"""Delta-accumulative propagation core.

Every engine in the repository — the batch runner, the incremental baselines,
Layph's shortcut calculation, its per-subgraph message upload and its
upper-layer iteration — executes the same round-based propagation loop defined
here, over a *factor adjacency* (vertex -> list of ``(target, factor)``
pairs).  Using one shared core keeps the edge-activation counts of the
different systems directly comparable, which is what the paper's Figures 1
and 6 measure.

The loop has two interchangeable implementations selected through
:mod:`repro.engine.backends`: the reference pure-Python loop below and the
vectorized CSR engine of :mod:`repro.engine.dense_propagation`
(``backend="numpy"``), which produces identical states, round counts and
edge-activation counts.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.backends import get_backend, resolve_backend
from repro.engine.metrics import ExecutionMetrics

AdjacencyFn = Callable[[int], Iterable[Tuple[int, float]]]


class NonConvergenceError(RuntimeError):
    """A propagation loop hit its round cap with significant messages left.

    Returning partial results would silently leave stale states behind, so
    the engines raise instead (see ``LayphEngine._local_upload``).
    """


class FactorAdjacency:
    """Materialised factor adjacency: vertex -> list of ``(target, factor)``.

    The batch runner derives it from a graph and an algorithm; Layph derives
    it from shortcut tables.  It is callable so it can be passed directly to
    :func:`propagate`.
    """

    def __init__(self, adjacency: Optional[Dict[int, List[Tuple[int, float]]]] = None):
        self._adjacency: Dict[int, List[Tuple[int, float]]] = adjacency or {}
        #: mutation counter consulted by the CSR compile memo (see
        #: :mod:`repro.graph.csr_cache`); mutating the backing dict directly
        #: instead of through :meth:`add` bypasses it.
        self._version = 0

    @classmethod
    def from_graph(cls, spec: AlgorithmSpec, graph) -> "FactorAdjacency":
        """Build the factor adjacency of ``graph`` under ``spec``."""
        adjacency: Dict[int, List[Tuple[int, float]]] = {}
        for source in graph.vertices():
            edges = [
                (target, spec.edge_factor(graph, source, target))
                for target in graph.out_neighbors(source)
            ]
            if edges:
                adjacency[source] = edges
        return cls(adjacency)

    def add(self, source: int, target: int, factor: float) -> None:
        """Append one ``(target, factor)`` pair under ``source``."""
        self._adjacency.setdefault(source, []).append((target, factor))
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every :meth:`add` and every effective
        :meth:`replace_rows`.  Keys the CSR compile memo and Layph's cached
        reverse view (:meth:`repro.layph.layered_graph.LayeredGraph.
        upper_in_adjacency`)."""
        return self._version

    def out_edges(self, vertex: int) -> List[Tuple[int, float]]:
        """Out-edges (with factors) of ``vertex``."""
        return self._adjacency.get(vertex, [])

    def __call__(self, vertex: int) -> List[Tuple[int, float]]:
        return self._adjacency.get(vertex, [])

    def __len__(self) -> int:
        return sum(len(edges) for edges in self._adjacency.values())

    def vertices_with_out_edges(self) -> List[int]:
        """Vertices that have at least one out-edge."""
        return list(self._adjacency)

    def same_links(self, other: "FactorAdjacency") -> bool:
        """Whether both adjacencies hold exactly the same per-vertex link lists.

        Used by Layph's upper-layer rebuild to detect that a delta left the
        skeleton unchanged: the old adjacency object (and with it the
        version-keyed CSR compile memo of
        :func:`repro.graph.csr_cache.master_factor_csr`) can then be kept
        alive instead of recompiling an identical snapshot.
        """
        return self._adjacency == other._adjacency

    def replace_rows(self, rows: Dict[int, List[Tuple[int, float]]]) -> bool:
        """Replace whole per-source link lists in place.

        A source mapped to an empty list is dropped (matching an assembly
        that never added a link for it).  Sources whose new row equals the
        stored one are left untouched, and the mutation counter — which keys
        the :func:`repro.graph.csr_cache.master_factor_csr` compile memo —
        is bumped only when something actually changed, so a no-op patch
        keeps the compiled CSR alive across deltas.  Returns whether any row
        changed.
        """
        changed = False
        for source, row in rows.items():
            old_row = self._adjacency.get(source)
            if row:
                if old_row != row:
                    self._adjacency[source] = row
                    changed = True
            elif old_row is not None:
                del self._adjacency[source]
                changed = True
        if changed:
            self._version += 1
        return changed


class SilencedAdjacency:
    """View of a factor adjacency in which some vertices absorb.

    Silenced vertices keep receiving messages but expose no out-edges, so
    they accumulate without re-propagating.  Layph's shortcut computations
    use this to fold paths over internal intermediates only (boundary
    vertices absorb); expressing the silencing structurally — instead of
    through a stateful closure — is what lets the vectorized backend compile
    the adjacency to CSR arrays.
    """

    def __init__(self, base: FactorAdjacency, silenced: Iterable[int]) -> None:
        self.base = base
        self.silenced: FrozenSet[int] = frozenset(silenced)

    def __call__(self, vertex: int) -> List[Tuple[int, float]]:
        if vertex in self.silenced:
            return []
        return self.base(vertex)

    def vertices_with_out_edges(self) -> List[int]:
        """Non-silenced vertices that have at least one out-edge."""
        return [v for v in self.base.vertices_with_out_edges() if v not in self.silenced]


def propagate(
    spec: AlgorithmSpec,
    adjacency: AdjacencyFn,
    states: Dict[int, float],
    pending: Dict[int, float],
    metrics: Optional[ExecutionMetrics] = None,
    max_rounds: Optional[int] = None,
    allowed_targets: Optional[Callable[[int], bool]] = None,
    backend: Optional[str] = None,
) -> Dict[int, float]:
    """Run the delta-accumulative loop to convergence.

    Args:
        spec: the algorithm (``F``/``G`` and friends).
        adjacency: vertex -> iterable of ``(target, factor)`` pairs.
        states: vertex -> current state; mutated in place and returned.
        pending: vertex -> accumulated but not yet applied message; consumed.
        metrics: edge activations and rounds are recorded here if given.
        max_rounds: optional safety bound on the number of supersteps.
        allowed_targets: optional predicate; messages to vertices for which it
            returns ``False`` are generated (and counted as activations, the
            ``F`` work has been done) but then discarded.  Layph uses this to
            stop upper-layer messages from descending into internal vertices.
        backend: propagation backend name (``"python"``/``"numpy"``);
            ``None`` consults the ``REPRO_BACKEND`` environment variable and
            defaults to the Python loop.  A non-Python backend that cannot
            express ``spec``'s algebra falls back to the Python loop
            transparently.

    Returns:
        The ``states`` dict, updated to the converged values.

    The loop is round based: every round processes a snapshot of the vertices
    whose pending message is significant, applies the aggregation ``G`` to
    their state, and scatters ``combine(out_value, factor)`` along their
    out-edges into the pending map of the next round.  Selective algorithms
    propagate their (improved) new state and stay silent when the pending
    message does not improve the state; accumulative algorithms propagate the
    applied delta.
    """
    resolved = resolve_backend(backend)
    implementation = get_backend(resolved)
    if implementation is not None:
        result = implementation(
            spec,
            adjacency,
            states,
            pending,
            metrics=metrics,
            max_rounds=max_rounds,
            allowed_targets=allowed_targets,
        )
        if result is not None:
            return result
    if metrics is None:
        metrics = ExecutionMetrics()
    identity = spec.aggregate_identity()
    selective = spec.is_selective()
    rounds = 0

    while pending:
        if max_rounds is not None and rounds >= max_rounds:
            break
        active = sorted(
            vertex for vertex, message in pending.items() if spec.is_significant(message)
        )
        if not active:
            pending.clear()
            break
        round_activations = 0
        # Snapshot and remove the active entries; messages generated this
        # round are accumulated for the next round.
        snapshot = {vertex: pending.pop(vertex) for vertex in active}
        for vertex, delta in snapshot.items():
            old_state = states.get(vertex, spec.initial_state(vertex))
            new_state = spec.aggregate(old_state, delta)
            if selective:
                if new_state == old_state:
                    continue
                states[vertex] = new_state
                out_value = new_state
            else:
                states[vertex] = new_state
                out_value = delta
            metrics.vertex_updates += 1
            for target, factor in adjacency(vertex):
                round_activations += 1
                message = spec.combine(out_value, factor)
                if allowed_targets is not None and not allowed_targets(target):
                    continue
                if spec.absorbs(target):
                    continue
                if not spec.is_significant(message):
                    continue
                pending[target] = spec.aggregate(pending.get(target, identity), message)
        metrics.record_round(round_activations, len(snapshot))
        rounds += 1
    return states


def inject(
    spec: AlgorithmSpec,
    pending: Dict[int, float],
    messages: Mapping[int, float],
) -> None:
    """Aggregate ``messages`` into a pending map in place."""
    identity = spec.aggregate_identity()
    for vertex, value in messages.items():
        pending[vertex] = spec.aggregate(pending.get(vertex, identity), value)
