"""The ``"numpy-parallel"`` propagation backend: numpy + a process pool.

This backend is the vectorized engine of
:mod:`repro.engine.dense_propagation` with the superstep's message gather
row-partitioned across the persistent worker pool
(:mod:`repro.parallel.executor`).  The read-only CSR block (targets,
factors, masks) lives in shared memory: cache-stable snapshots are served
by the persistent arena cache (:mod:`repro.parallel.arena` — exported once,
then patched in place delta to delta), everything else is exported into a
throwaway per-call arena (:mod:`repro.parallel.shm`).  Each round, the
scatterer rows are split
into contiguous chunks balanced by edge count and each worker computes
:func:`repro.parallel.slabs.gather_messages` over its chunk with zero-copy
views.  Because the gather is a pure function applied row-by-row and the
chunks are concatenated back in partition order, the kept targets/messages
are *identical* arrays to the serial gather — the subsequent unbuffered
``np.add.at``/``np.minimum.at`` scatter therefore reproduces the serial
(and Python-loop) results bit for bit.

Graceful degradation, in order:

* spec/adjacency the array kernels cannot express → ``None`` (Python loop),
  exactly like the ``"numpy"`` backend;
* worker count 1 (``REPRO_WORKERS`` unset) or no shared memory → serial
  numpy kernels, no pool, no arena;
* work unit below ``REPRO_PARALLEL_MIN_EDGES`` total edges → serial numpy
  (fan-out overhead would dominate);
* any :class:`repro.parallel.executor.WorkerPoolError` mid-run → the
  states/pending dicts are untouched (write-back happens only after the
  run), so the call simply rebuilds a fresh slab and reruns serially.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.dense_propagation import (
    build_propagation_slab,
    record_propagation_rounds,
    write_back_slab,
)
from repro.engine.metrics import ExecutionMetrics
from repro.parallel import shm
from repro.parallel.arena import slab_arena_cache
from repro.parallel.executor import (
    WorkerPool,
    WorkerPoolError,
    parallel_pool,
    run_with_respawn,
)
from repro.parallel.slabs import PropagationSlab, run_propagation

#: minimum total edge count before a propagate call fans out to the pool
#: (small work units are faster serial; tests set it to 0 to force fan-out)
MIN_EDGES_ENV_VAR = "REPRO_PARALLEL_MIN_EDGES"
DEFAULT_MIN_EDGES = 4096


def parallel_min_edges() -> int:
    raw = os.environ.get(MIN_EDGES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_MIN_EDGES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MIN_EDGES


def chunk_rows(counts: np.ndarray, chunks: int) -> List[Tuple[int, int]]:
    """Split rows into ≤ ``chunks`` contiguous ``(start, stop)`` ranges of
    roughly equal total edge count (empty ranges dropped)."""
    cumulative = np.cumsum(counts)
    total = int(cumulative[-1]) if counts.size else 0
    if total == 0 or chunks <= 1:
        return [(0, int(counts.size))] if counts.size else []
    boundaries = np.searchsorted(
        cumulative, np.linspace(0, total, chunks + 1)[1:-1], side="left"
    )
    edges = [0, *list(int(b) + 1 for b in boundaries), int(counts.size)]
    ranges = []
    for start, stop in zip(edges[:-1], edges[1:]):
        start, stop = min(start, counts.size), min(stop, counts.size)
        if stop > start:
            ranges.append((start, stop))
    return ranges


def _pooled_gather(
    pool: WorkerPool,
    refs: Dict[str, object],
    min_edges: int,
) -> Callable:
    """The gather hook injected into the superstep loop.

    Splits the scatterer rows into contiguous chunks, runs
    ``gather_messages`` on each across the pool, and concatenates the kept
    targets/messages back in partition order — bitwise equal to the serial
    gather.  Rounds below ``min_edges`` stay serial (``None`` makes the
    superstep use its own arrays).

    A :class:`WorkerPoolError` is retried once on a freshly spawned pool
    (gather tasks are pure — they only read the shared CSR block — so the
    same refs are safe to resubmit); the fresh pool is adopted for the
    remaining supersteps.
    """
    from repro.parallel.slabs import gather_messages

    pool_box = [pool]

    def gather(slab: PropagationSlab, starts, counts, total, out_values):
        ranges = (
            chunk_rows(counts, pool_box[0].num_workers)
            if total >= min_edges
            else []
        )
        if len(ranges) <= 1:
            return gather_messages(
                slab.targets,
                slab.factors,
                slab.absorb,
                slab.allowed,
                starts,
                counts,
                total,
                out_values,
                slab.selective,
                slab.combine_add,
                slab.identity,
                slab.tolerance,
            )
        tasks = []
        costs = []
        for start, stop in ranges:
            chunk_counts = counts[start:stop]
            chunk_total = int(chunk_counts.sum())
            tasks.append(
                (
                    "gather",
                    {
                        "targets": refs["targets"],
                        "factors": refs["factors"],
                        "absorb": refs["absorb"],
                        "allowed": refs.get("allowed"),
                        "starts": starts[start:stop],
                        "counts": chunk_counts,
                        "total": chunk_total,
                        "out_values": out_values[start:stop],
                        "selective": slab.selective,
                        "combine_add": slab.combine_add,
                        "identity": slab.identity,
                        "tolerance": slab.tolerance,
                    },
                )
            )
            costs.append(float(chunk_total))
        results, pool_box[0] = run_with_respawn(
            pool_box[0], lambda: (tasks, costs)
        )
        kept_targets = np.concatenate([r[0] for r in results])
        kept_messages = np.concatenate([r[1] for r in results])
        return kept_targets, kept_messages

    return gather


def _run_parallel(
    slab: PropagationSlab,
    pool: WorkerPool,
    max_rounds: Optional[int],
    min_edges: int,
) -> list:
    """Run one slab with pooled gathers.

    The read-only CSR block is served from the persistent arena cache when
    the slab carries a cache-stable snapshot token — export once, patch
    O(changed) bytes per delta, zero worker re-attach in the steady state.
    Otherwise it is exported into a throwaway per-call arena as before.
    """
    refs = slab_arena_cache().refs_for(slab)
    if refs is not None:
        return run_propagation(
            slab, max_rounds, gather=_pooled_gather(pool, refs, min_edges)
        )
    arrays = [slab.targets, slab.factors, slab.absorb]
    keys = ["targets", "factors", "absorb"]
    if slab.allowed is not None:
        arrays.append(slab.allowed)
        keys.append("allowed")
    arena, ref_list = shm.share_many(arrays)
    refs = dict(zip(keys, ref_list))
    try:
        return run_propagation(
            slab, max_rounds, gather=_pooled_gather(pool, refs, min_edges)
        )
    finally:
        arena.close()


def propagate_parallel(
    spec,
    adjacency,
    states: Dict[int, float],
    pending: Dict[int, float],
    metrics: Optional[ExecutionMetrics] = None,
    max_rounds: Optional[int] = None,
    allowed_targets: Optional[Callable[[int], bool]] = None,
) -> Optional[Dict[int, float]]:
    """Parallel drop-in for ``propagate_numpy``; ``None`` = Python fallback."""
    if not pending:
        return states
    built = build_propagation_slab(spec, adjacency, states, pending, allowed_targets)
    if built is None:
        return None
    slab, ids = built
    if metrics is None:
        metrics = ExecutionMetrics()
    min_edges = parallel_min_edges()
    pool = parallel_pool()
    if pool is None or int(slab.targets.size) < min_edges:
        rounds = run_propagation(slab, max_rounds)
    else:
        try:
            rounds = _run_parallel(slab, pool, max_rounds, min_edges)
        except WorkerPoolError:
            # The dicts are untouched (write-back is the last step), so a
            # clean serial rerun on a fresh slab is always safe.
            slab, ids = build_propagation_slab(
                spec, adjacency, states, pending, allowed_targets
            )
            rounds = run_propagation(slab, max_rounds)
    record_propagation_rounds(metrics, rounds)
    write_back_slab(slab, ids, states, pending)
    return states
