"""Work-stealing scheduler simulation.

Section IV-A of the paper mentions that Layph uses work stealing to balance
the per-subgraph local computations across threads.  This module provides a
deterministic simulation of that scheduler: given a bag of independent tasks
(one per affected subgraph, each with a known work amount), it computes the
makespan achieved by ``T`` workers that steal the largest remaining task when
idle — the classic LPT (longest processing time) greedy bound.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple


class WorkStealingScheduler:
    """Greedy longest-task-first assignment of independent tasks to workers."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers

    def schedule(self, task_costs: Sequence[float]) -> Tuple[float, List[List[int]]]:
        """Assign tasks and return ``(makespan, per-worker task index lists)``.

        Tasks are sorted by decreasing cost and each is given to the currently
        least-loaded worker, which is how an idle thread stealing the largest
        pending subgraph behaves in the steady state.
        """
        assignments: List[List[int]] = [[] for _ in range(self.num_workers)]
        if not task_costs:
            return 0.0, assignments
        heap = [(0.0, worker) for worker in range(self.num_workers)]
        heapq.heapify(heap)
        order = sorted(range(len(task_costs)), key=lambda i: -task_costs[i])
        for index in order:
            load, worker = heapq.heappop(heap)
            assignments[worker].append(index)
            heapq.heappush(heap, (load + task_costs[index], worker))
        makespan = max(load for load, _ in heap)
        return makespan, assignments

    def speedup(self, task_costs: Sequence[float]) -> float:
        """Speedup of the schedule over sequential execution."""
        total = sum(task_costs)
        if total == 0.0:
            return 1.0
        makespan, _ = self.schedule(task_costs)
        return total / makespan if makespan > 0 else float(self.num_workers)
