"""Parallel runtime: slab kernels, shared-memory arena, worker pool.

Grown out of the original thread-scaling *simulation* (the LPT scheduler
and the cost model, still here): the slab kernels of
:mod:`repro.parallel.slabs` run the numpy hot loops on plain arrays, the
arena of :mod:`repro.parallel.shm` ships those arrays to worker processes
zero-copy, and the pool of :mod:`repro.parallel.executor` executes the
LPT assignments for real — the ``"numpy-parallel"`` backend.
"""

from repro.parallel.cost_model import ParallelCostModel, simulated_runtime
from repro.parallel.work_stealing import WorkStealingScheduler

__all__ = ["ParallelCostModel", "simulated_runtime", "WorkStealingScheduler"]
