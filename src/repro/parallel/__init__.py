"""Simulated parallel runtime used by the thread-scaling experiment."""

from repro.parallel.cost_model import ParallelCostModel, simulated_runtime
from repro.parallel.work_stealing import WorkStealingScheduler

__all__ = ["ParallelCostModel", "simulated_runtime", "WorkStealingScheduler"]
