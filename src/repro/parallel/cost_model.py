"""Deterministic parallel cost model (Figure 9 substitute).

The paper measures wall-clock scaling from 1 to 32 threads on a 52-vCPU
machine; a pure-Python reproduction cannot measure that meaningfully (the
GIL), so the harness replays each engine's recorded per-superstep work
through a simple cost model instead:

* every edge activation costs one work unit;
* within one superstep the active work is spread over ``T`` workers, but a
  superstep can never beat its critical path (modelled as the work of the
  busiest vertex) and pays a *write–write conflict* penalty that grows with
  the number of workers touching shared state — the effect the paper blames
  for the flattening beyond 8 threads;
* supersteps are separated by a fixed barrier cost.

Engines that decompose their work into many independent local computations
(Layph's per-subgraph shortcut updates, uploads and assignments) scale almost
linearly under this model; engines that funnel all work through one global
propagation scale worse — exactly the contrast Figure 9 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.metrics import ExecutionMetrics


@dataclass
class ParallelCostModel:
    """Tunable constants of the simulated runtime."""

    #: cost of one edge activation (one F application), in arbitrary units
    activation_cost: float = 1.0
    #: per-superstep synchronisation barrier cost
    barrier_cost: float = 32.0
    #: share of a superstep's work that is inherently sequential (atomic
    #: aggregation on hot vertices causing write-write conflicts)
    conflict_fraction: float = 0.03
    #: extra conflict pressure per additional worker
    conflict_growth: float = 0.015
    #: cost of copying one byte of the read-only CSR block into shared
    #: memory (same arbitrary units as ``activation_cost``)
    copy_byte_cost: float = 0.002
    #: fixed cost of one shared-memory segment create/unlink plus the worker
    #: attach round it forces
    segment_cost: float = 64.0
    #: fixed per-call bookkeeping of serving a block (ref lookups, mask
    #: refresh) — paid on every pooled call regardless of the path
    serving_call_cost: float = 16.0

    def superstep_time(self, activations: int, active_vertices: int, workers: int) -> float:
        """Simulated time of one superstep on ``workers`` workers."""
        if activations <= 0:
            return self.barrier_cost
        work = activations * self.activation_cost
        # The parallel share is bounded by the number of active vertices: one
        # vertex's scatter is processed by one worker.
        usable_workers = max(1, min(workers, max(active_vertices, 1)))
        conflict = self.conflict_fraction + self.conflict_growth * (usable_workers - 1)
        conflict = min(conflict, 0.9)
        sequential = work * conflict
        parallel = work * (1.0 - conflict) / usable_workers
        return sequential + parallel + self.barrier_cost

    def run_time(
        self,
        activations_per_round: Sequence[int],
        active_vertices_per_round: Sequence[int],
        workers: int,
    ) -> float:
        """Simulated time of a whole run (sequence of supersteps)."""
        total = 0.0
        for activations, active in zip(activations_per_round, active_vertices_per_round):
            total += self.superstep_time(activations, active, workers)
        return total

    # ------------------------------------------------------------------
    # CSR-block serving overhead of the pooled backend (PR 10)
    # ------------------------------------------------------------------
    def export_per_call_serving(self, block_bytes: int, deltas: int) -> float:
        """Serving cost of ``deltas`` pooled calls that each export the full
        read-only CSR block into a throwaway segment (the pre-arena path).

        The model charges byte shipping plus segment churn, so the ratio to
        :meth:`arena_serving` is the asymptotic (large-block) bound — at
        small block sizes interpreter bookkeeping narrows the measured gap.
        """
        return deltas * (
            self.segment_cost
            + self.serving_call_cost
            + block_bytes * self.copy_byte_cost
        )

    def arena_serving(self, block_bytes: int, patch_bytes: Iterable[int]) -> float:
        """Serving cost of the persistent-arena path over one delta sequence:
        one full export into a resident segment, then only the changed bytes
        of each subsequent delta (no segment churn, no worker re-attach)."""
        patches = list(patch_bytes)
        return (
            self.segment_cost
            + (1 + len(patches)) * self.serving_call_cost
            + (block_bytes + sum(patches)) * self.copy_byte_cost
        )


def simulated_runtime(
    metrics: ExecutionMetrics,
    workers: int,
    model: ParallelCostModel | None = None,
    independent_units: int = 1,
) -> float:
    """Simulated runtime of one engine run under the cost model.

    Args:
        metrics: the per-superstep activation counts recorded by the engine.
        workers: number of simulated workers.
        model: cost constants (defaults to :class:`ParallelCostModel`).
        independent_units: number of mutually independent local computations
            the run decomposes into (e.g. affected subgraphs); work spread
            across independent units parallelises without conflicts, which is
            how Layph's subgraph-local phases benefit more from threads.
    """
    model = model or ParallelCostModel()
    rounds = metrics.activations_per_round or [metrics.edge_activations]
    actives = metrics.active_vertices_per_round or [max(metrics.vertex_updates, 1)]
    base = model.run_time(rounds, actives, workers)
    if independent_units <= 1 or workers <= 1:
        return base
    # Independent local units eliminate a share of the conflict penalty.
    relief = min(independent_units, workers) / workers
    conflict_free = model.run_time(rounds, actives, min(workers, workers))
    return base - (base - conflict_free) * relief if conflict_free < base else base
