"""Shared-memory arena for zero-copy slab transfer to worker processes.

The slab kernels of :mod:`repro.parallel.slabs` operate on plain numpy
arrays, so shipping a work unit to another process reduces to placing its
arrays in a ``multiprocessing.shared_memory`` segment and sending the
pickled *description* — name, offset, shape, dtype — across the pipe.  A
:class:`SharedArena` packs many arrays into one segment (one ``shm_open``
per batch instead of per array); workers attach with :func:`attach`, which
maps the same physical pages and builds views without copying.

Gating: :func:`shm_available` probes the platform once (and honours the
``REPRO_SHM=0`` escape hatch); the parallel backend falls back to the
serial kernels when it reports ``False``, so importing this module is
always safe.

Two arena shapes exist.  :class:`SharedArena` is the per-call batch: pack,
ship, close.  :class:`PersistentArena` is the long-lived variant behind
:class:`repro.parallel.arena.SlabArenaCache`: each array gets a region with
power-of-two spare capacity so steady-state deltas are serviced by in-place
region copies (``store``/``patch``) without re-creating the segment, and the
segment is only re-allocated — with naturally doubled capacity — when an
array outgrows its region.

Every segment created here is registered in a process-wide live set guarded
by a monotonically increasing *generation* counter (:func:`arena_generation`
/ :func:`live_segments`).  The executor stamps both onto each task batch;
workers call :func:`sync_attachments` with the stamp and evict cached
attachments whose segment is gone, so long-lived worker processes do not
accumulate mappings of dead per-call segments (and re-validate persistent
arenas purely by generation — an unchanged stamp means every cached mapping
is still current, no per-call attach/teardown).

The attach side deliberately keeps Python's ``resource_tracker`` out of
the loop: the creating process owns the segment lifetime, and tracking the
worker-side attachments would make the tracker unlink segments that are
still in use (and spam KeyError warnings at interpreter exit).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: set to ``0`` to force the serial fallback even where shm works
SHM_ENV_VAR = "REPRO_SHM"

try:  # pragma: no cover - import success is platform-dependent
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used on this platform / configuration."""


_PROBE_RESULT: Optional[bool] = None


def _probe() -> bool:
    if _shared_memory is None:
        return False
    try:
        segment = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError, FileNotFoundError):
        return False
    try:
        segment.buf[0] = 1
        ok = segment.buf[0] == 1
    finally:
        segment.close()
        segment.unlink()
    return bool(ok)


def shm_available() -> bool:
    """True when shared-memory segments can be created on this platform.

    The (successful) probe result is cached for the process lifetime; the
    ``REPRO_SHM`` environment variable is consulted on every call so tests
    can flip the fallback path without clearing caches.
    """
    if os.environ.get(SHM_ENV_VAR, "").strip() == "0":
        return False
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        _PROBE_RESULT = _probe()
    return _PROBE_RESULT


@dataclass(frozen=True)
class ArrayRef:
    """Picklable description of one array inside a shared segment."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


# ----------------------------------------------------------------------
# segment registry: generation stamps for worker-side revalidation
# ----------------------------------------------------------------------
_GENERATION = 0
_LIVE_SEGMENTS: set = set()


def _register_segment(name: str) -> None:
    global _GENERATION
    _GENERATION += 1
    _LIVE_SEGMENTS.add(name)


def _deregister_segment(name: str) -> None:
    global _GENERATION
    _GENERATION += 1
    _LIVE_SEGMENTS.discard(name)


def arena_generation() -> int:
    """Monotonic counter bumped whenever the set of live segments changes.

    In-place writes into an existing segment do *not* bump it — workers see
    those through the shared pages without re-attaching.
    """
    return _GENERATION


def live_segments() -> Tuple[str, ...]:
    """Names of every segment currently owned by this process."""
    return tuple(sorted(_LIVE_SEGMENTS))


class SharedArena:
    """One shared-memory segment holding a batch of arrays.

    Built by the coordinating process via :meth:`share_many`; workers turn
    the returned :class:`ArrayRef` descriptions back into views with
    :func:`attach`.  The arena owns the segment: :meth:`close` releases the
    local mapping and unlinks the name (workers keep their own mappings
    alive until they drop them).
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        if not shm_available():  # pragma: no cover - guarded by callers
            raise ShmUnavailable("shared memory is unavailable on this platform")
        offsets: List[int] = []
        cursor = 0
        for array in arrays:
            cursor = _align(cursor)
            offsets.append(cursor)
            cursor += array.nbytes
        self._segment = _shared_memory.SharedMemory(
            create=True, size=max(cursor, 1)
        )
        _register_segment(self._segment.name)
        self._refs: List[ArrayRef] = []
        for array, offset in zip(arrays, offsets):
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=self._segment.buf,
                offset=offset,
            )
            view[...] = array
            self._refs.append(
                ArrayRef(
                    segment=self._segment.name,
                    offset=offset,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            )

    @property
    def refs(self) -> List[ArrayRef]:
        return list(self._refs)

    def view(self, position: int) -> np.ndarray:
        """Coordinator-side view of the ``position``-th shared array."""
        ref = self._refs[position]
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=self._segment.buf,
            offset=ref.offset,
        )

    def close(self) -> None:
        _deregister_segment(self._segment.name)
        try:
            self._segment.close()
        finally:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def share_many(arrays: Sequence[np.ndarray]) -> Tuple[SharedArena, List[ArrayRef]]:
    """Pack ``arrays`` into one fresh segment; ``(arena, refs)``."""
    arena = SharedArena(arrays)
    return arena, arena.refs


def _region_capacity(nbytes: int) -> int:
    """Power-of-two region capacity with headroom for in-place growth."""
    capacity = 64
    while capacity < nbytes:
        capacity *= 2
    return capacity


#: process-wide registry of live persistent arenas, released at pool teardown
_PERSISTENT_ARENAS: Dict[int, "PersistentArena"] = {}


class PersistentArena:
    """A long-lived segment of array regions with spare capacity.

    Each array at construction gets a 64-byte-aligned region sized to the
    next power of two of its byte length, so later :meth:`store`/:meth:`patch`
    calls can service moderately grown arrays in place.  When an array
    outgrows its region the owner must allocate a fresh arena — capacities
    being powers of two, that re-allocation at least doubles the overflowing
    region, which is what amortizes re-export cost over a delta sequence.

    Unlike :class:`SharedArena` the refs are *regenerated* per call (shapes
    may shrink/grow within a region), and the segment registers itself for
    :func:`release_arenas` so pool teardown unlinks it before the worker
    processes are joined.
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        if not shm_available():  # pragma: no cover - guarded by callers
            raise ShmUnavailable("shared memory is unavailable on this platform")
        self._offsets: List[int] = []
        self._capacities: List[int] = []
        cursor = 0
        for array in arrays:
            cursor = _align(cursor)
            self._offsets.append(cursor)
            capacity = _region_capacity(array.nbytes)
            self._capacities.append(capacity)
            cursor += capacity
        self._segment = _shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        _register_segment(self._segment.name)
        self._shapes: List[Tuple[int, ...]] = [tuple(a.shape) for a in arrays]
        self._dtypes: List[np.dtype] = [a.dtype for a in arrays]
        self.closed = False
        #: cumulative bytes copied into the arena (full stores + patches) —
        #: the benchmark's measure of shipped bytes per delta
        self.bytes_copied = 0
        _PERSISTENT_ARENAS[id(self)] = self
        for position, array in enumerate(arrays):
            self.store(position, array)

    # ------------------------------------------------------------------
    def fits(self, position: int, array: np.ndarray) -> bool:
        """Whether ``array`` fits into the ``position``-th region in place."""
        return array.nbytes <= self._capacities[position]

    def _region(self, position: int, shape: Tuple[int, ...], dtype: np.dtype):
        return np.ndarray(
            shape,
            dtype=dtype,
            buffer=self._segment.buf,
            offset=self._offsets[position],
        )

    def store(self, position: int, array: np.ndarray) -> None:
        """Full copy of ``array`` into its region (shape/dtype re-recorded)."""
        if not self.fits(position, array):
            raise ValueError("array outgrew its arena region")
        self._shapes[position] = tuple(array.shape)
        self._dtypes[position] = array.dtype
        self._region(position, array.shape, array.dtype)[...] = array
        self.bytes_copied += array.nbytes

    def patch(
        self,
        position: int,
        array: np.ndarray,
        spans: Sequence[Tuple[int, int]],
    ) -> None:
        """Copy only ``array[start:stop]`` for each span; O(changed) bytes.

        The caller guarantees every element outside the spans is already
        bit-identical in the region (the :class:`repro.graph.csr_cache.
        PatchNote` contract).  The recorded shape moves to ``array.shape``,
        so a tail span may legitimately grow/shrink the array within the
        region's capacity.
        """
        if not self.fits(position, array):
            raise ValueError("array outgrew its arena region")
        self._shapes[position] = tuple(array.shape)
        self._dtypes[position] = array.dtype
        region = self._region(position, array.shape, array.dtype)
        itemsize = array.dtype.itemsize
        for start, stop in spans:
            if stop > start:
                region[start:stop] = array[start:stop]
                self.bytes_copied += (stop - start) * itemsize

    def ref(self, position: int) -> ArrayRef:
        """Current :class:`ArrayRef` of the ``position``-th region."""
        return ArrayRef(
            segment=self._segment.name,
            offset=self._offsets[position],
            shape=self._shapes[position],
            dtype=self._dtypes[position].str,
        )

    def view(self, position: int) -> np.ndarray:
        """Coordinator-side view of the ``position``-th region's array."""
        return self._region(position, self._shapes[position], self._dtypes[position])

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        _PERSISTENT_ARENAS.pop(id(self), None)
        _deregister_segment(self._segment.name)
        try:
            self._segment.close()
        finally:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def release_arenas() -> None:
    """Close every live :class:`PersistentArena` in this process.

    Called by :func:`repro.parallel.executor.shutdown_pools` *before* the
    worker processes are joined, so no segment outlives the pool into
    interpreter exit (where the resource tracker would warn about leaked
    shared memory).  Idempotent: arenas deregister themselves on close.
    """
    while _PERSISTENT_ARENAS:
        _key, arena = _PERSISTENT_ARENAS.popitem()
        try:
            arena.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


#: worker-side segment cache: one attach per segment name, not per array
_ATTACHED: Dict[str, object] = {}


def attach(ref: ArrayRef) -> np.ndarray:
    """Zero-copy view of a shared array described by ``ref``.

    Worker-side: the underlying segment is attached once per process and
    cached — repeated refs into the same segment share the mapping.  The
    attachment is detached from the resource tracker (where the runtime
    supports it) so worker exit cannot unlink a segment the coordinator
    still owns.
    """
    segment = _ATTACHED.get(ref.segment)
    if segment is None:
        if _shared_memory is None:
            raise ShmUnavailable("shared memory is unavailable on this platform")
        try:
            segment = _shared_memory.SharedMemory(name=ref.segment, track=False)
        except TypeError:
            # Python < 3.13: no ``track`` parameter, and attaching registers
            # the name with the resource tracker, which the coordinator
            # already did at creation — with a fork-shared tracker that
            # double entry would turn the coordinator's eventual unlink into
            # a KeyError.  Suppress the attach-side registration instead.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                segment = _shared_memory.SharedMemory(name=ref.segment)
            finally:
                resource_tracker.register = original_register
        _ATTACHED[ref.segment] = segment
    return np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=segment.buf,
        offset=ref.offset,
    )


#: last arena generation this (worker) process synchronized against
_SYNCED_GENERATION: Optional[int] = None


def sync_attachments(generation: int, live: Sequence[str]) -> None:
    """Reconcile this process's cached attachments with the coordinator.

    Workers call this with the ``(generation, live segment names)`` header
    stamped onto each task batch.  An unchanged generation is a no-op —
    every cached mapping is still current, which is what makes steady-state
    arena reuse free of per-call attach/teardown.  On a new generation,
    attachments whose segment the coordinator no longer owns are dropped
    (their per-call or re-allocated arenas are gone), bounding the worker's
    mapping cache by the live set instead of growing per call.
    """
    global _SYNCED_GENERATION
    if generation == _SYNCED_GENERATION:
        return
    keep = set(live)
    for name in list(_ATTACHED):
        if name not in keep:
            segment = _ATTACHED.pop(name)
            try:
                segment.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
    _SYNCED_GENERATION = generation


def detach_all() -> None:
    """Drop this process's cached segment attachments (worker teardown)."""
    while _ATTACHED:
        _name, segment = _ATTACHED.popitem()
        try:
            segment.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
