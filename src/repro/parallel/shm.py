"""Shared-memory arena for zero-copy slab transfer to worker processes.

The slab kernels of :mod:`repro.parallel.slabs` operate on plain numpy
arrays, so shipping a work unit to another process reduces to placing its
arrays in a ``multiprocessing.shared_memory`` segment and sending the
pickled *description* — name, offset, shape, dtype — across the pipe.  A
:class:`SharedArena` packs many arrays into one segment (one ``shm_open``
per batch instead of per array); workers attach with :func:`attach`, which
maps the same physical pages and builds views without copying.

Gating: :func:`shm_available` probes the platform once (and honours the
``REPRO_SHM=0`` escape hatch); the parallel backend falls back to the
serial kernels when it reports ``False``, so importing this module is
always safe.

The attach side deliberately keeps Python's ``resource_tracker`` out of
the loop: the creating process owns the segment lifetime, and tracking the
worker-side attachments would make the tracker unlink segments that are
still in use (and spam KeyError warnings at interpreter exit).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: set to ``0`` to force the serial fallback even where shm works
SHM_ENV_VAR = "REPRO_SHM"

try:  # pragma: no cover - import success is platform-dependent
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used on this platform / configuration."""


_PROBE_RESULT: Optional[bool] = None


def _probe() -> bool:
    if _shared_memory is None:
        return False
    try:
        segment = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError, FileNotFoundError):
        return False
    try:
        segment.buf[0] = 1
        ok = segment.buf[0] == 1
    finally:
        segment.close()
        segment.unlink()
    return bool(ok)


def shm_available() -> bool:
    """True when shared-memory segments can be created on this platform.

    The (successful) probe result is cached for the process lifetime; the
    ``REPRO_SHM`` environment variable is consulted on every call so tests
    can flip the fallback path without clearing caches.
    """
    if os.environ.get(SHM_ENV_VAR, "").strip() == "0":
        return False
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        _PROBE_RESULT = _probe()
    return _PROBE_RESULT


@dataclass(frozen=True)
class ArrayRef:
    """Picklable description of one array inside a shared segment."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


class SharedArena:
    """One shared-memory segment holding a batch of arrays.

    Built by the coordinating process via :meth:`share_many`; workers turn
    the returned :class:`ArrayRef` descriptions back into views with
    :func:`attach`.  The arena owns the segment: :meth:`close` releases the
    local mapping and unlinks the name (workers keep their own mappings
    alive until they drop them).
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        if not shm_available():  # pragma: no cover - guarded by callers
            raise ShmUnavailable("shared memory is unavailable on this platform")
        offsets: List[int] = []
        cursor = 0
        for array in arrays:
            cursor = _align(cursor)
            offsets.append(cursor)
            cursor += array.nbytes
        self._segment = _shared_memory.SharedMemory(
            create=True, size=max(cursor, 1)
        )
        self._refs: List[ArrayRef] = []
        for array, offset in zip(arrays, offsets):
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=self._segment.buf,
                offset=offset,
            )
            view[...] = array
            self._refs.append(
                ArrayRef(
                    segment=self._segment.name,
                    offset=offset,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            )

    @property
    def refs(self) -> List[ArrayRef]:
        return list(self._refs)

    def view(self, position: int) -> np.ndarray:
        """Coordinator-side view of the ``position``-th shared array."""
        ref = self._refs[position]
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=self._segment.buf,
            offset=ref.offset,
        )

    def close(self) -> None:
        try:
            self._segment.close()
        finally:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def share_many(arrays: Sequence[np.ndarray]) -> Tuple[SharedArena, List[ArrayRef]]:
    """Pack ``arrays`` into one fresh segment; ``(arena, refs)``."""
    arena = SharedArena(arrays)
    return arena, arena.refs


#: worker-side segment cache: one attach per segment name, not per array
_ATTACHED: Dict[str, object] = {}


def attach(ref: ArrayRef) -> np.ndarray:
    """Zero-copy view of a shared array described by ``ref``.

    Worker-side: the underlying segment is attached once per process and
    cached — repeated refs into the same segment share the mapping.  The
    attachment is detached from the resource tracker (where the runtime
    supports it) so worker exit cannot unlink a segment the coordinator
    still owns.
    """
    segment = _ATTACHED.get(ref.segment)
    if segment is None:
        if _shared_memory is None:
            raise ShmUnavailable("shared memory is unavailable on this platform")
        try:
            segment = _shared_memory.SharedMemory(name=ref.segment, track=False)
        except TypeError:
            # Python < 3.13: no ``track`` parameter, and attaching registers
            # the name with the resource tracker, which the coordinator
            # already did at creation — with a fork-shared tracker that
            # double entry would turn the coordinator's eventual unlink into
            # a KeyError.  Suppress the attach-side registration instead.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                segment = _shared_memory.SharedMemory(name=ref.segment)
            finally:
                resource_tracker.register = original_register
        _ATTACHED[ref.segment] = segment
    return np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=segment.buf,
        offset=ref.offset,
    )


def detach_all() -> None:
    """Drop this process's cached segment attachments (worker teardown)."""
    while _ATTACHED:
        _name, segment = _ATTACHED.popitem()
        try:
            segment.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
