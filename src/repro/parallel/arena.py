"""Persistent shared-memory arenas for the parallel propagation slabs.

PR 6's parallel backend exported the read-only CSR block (``targets`` /
``factors`` / masks) into a fresh :class:`~repro.parallel.shm.SharedArena`
on **every** propagate call — an O(E) copy plus a segment create/unlink and
a worker-side attach/teardown per delta, which is exactly the per-delta
overhead the serial path spent the incremental arc eliminating.  The
:class:`SlabArenaCache` closes that gap:

* the first parallel call over a compiled CSR snapshot exports its block
  into a :class:`~repro.parallel.shm.PersistentArena` (a **miss**);
* while the engine keeps serving the *same* snapshot (graph version
  unchanged), subsequent calls reuse the resident block byte-for-byte and
  only refresh the small per-call vertex masks (a **hit**);
* when a :class:`~repro.graph.delta.GraphDelta` moves the snapshot forward,
  the cache recognises the patched CSR through its
  :class:`~repro.graph.csr_cache.PatchNote` and copies only the changed
  rows' slot ranges into the resident arena (a **patch**) — steady-state
  deltas ship O(changed) bytes instead of O(E);
* a patch whose changed range exceeds the configured churn fraction
  (``REPRO_CSR_REBUILD_FRACTION``, mirroring the CSR cache's amortized
  rebuild) or whose arrays outgrew their regions falls back to a full
  re-export — arena regions have power-of-two capacity, so re-allocation
  doubles the overflowing region and the copy cost stays amortized.

Workers never see any of this directly: they revalidate their cached
attachments purely by the arena *generation stamp* the executor puts on
each task batch (:func:`repro.parallel.shm.sync_attachments`), so a
steady-state delta costs them zero attach/teardown work.

The cache is duck-typed against the CSR surface (``targets``/``factors``/
``offsets``/``patch_note``/``master`` attributes) rather than importing
:mod:`repro.graph` — the parallel layer stays engine- and graph-free.

``REPRO_SLAB_ARENA=0`` disables the cache entirely (every call falls back
to the per-call :func:`~repro.parallel.shm.share_many` path).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.parallel import shm
from repro.parallel.executor import POOL_STATS

#: set to ``0`` to force the per-call export path even where shm works
SLAB_ARENA_ENV_VAR = "REPRO_SLAB_ARENA"
#: mirrors the CSR cache's amortized-rebuild knob: a patch touching more
#: than this fraction of the edge slots re-exports the whole block instead
CHURN_FRACTION_ENV_VAR = "REPRO_CSR_REBUILD_FRACTION"
DEFAULT_CHURN_FRACTION = 0.25

_FALSY = {"0", "false", "off", "no"}


def slab_arena_enabled() -> bool:
    """Whether the persistent arena layer is enabled (default on)."""
    return os.environ.get(SLAB_ARENA_ENV_VAR, "1").strip().lower() not in _FALSY


def churn_fraction() -> float:
    """Patched-slots-to-edges ratio beyond which patches give way to
    re-exports (same knob and default as the CSR cache's rebuild)."""
    raw = os.environ.get(CHURN_FRACTION_ENV_VAR)
    if raw is None:
        return DEFAULT_CHURN_FRACTION
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_CHURN_FRACTION
    return value if value > 0.0 else DEFAULT_CHURN_FRACTION


class _Entry:
    __slots__ = ("token", "arena")

    def __init__(self, token, arena: shm.PersistentArena) -> None:
        self.token = token
        self.arena = arena


#: region order inside every arena entry
_TARGETS, _FACTORS, _ABSORB, _ALLOWED = range(4)


class SlabArenaCache:
    """Identity-keyed cache of resident CSR blocks in shared memory.

    Entries are keyed on the compiled CSR snapshot *object* (a
    :class:`~repro.graph.csr.FactorCSR`, or the master behind a
    :class:`~repro.graph.csr.FactorCSRView` — the view shares the master's
    edge arrays, so one resident block serves every silenced variant).
    Snapshot identity subsumes ``(Graph, version)``: the CSR caches hand out
    the same object exactly while the graph version is unchanged, and hand
    out a patch-note-linked successor when a delta moved it forward.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._max_entries = max_entries

    # ------------------------------------------------------------------
    def refs_for(self, slab) -> Optional[Dict[str, Optional[shm.ArrayRef]]]:
        """Shared refs for ``slab``'s read-only block, or ``None``.

        ``None`` means "not arena-cacheable" — the caller should fall back
        to the per-call :func:`~repro.parallel.shm.share_many` export.  A
        non-``None`` result is guaranteed byte-identical to the slab's
        arrays and stays valid until the next call into this cache (the
        worker pool runs synchronously, so there is no concurrent reader
        while a later call patches the block).
        """
        token = getattr(slab, "block_token", None)
        if token is None or not slab_arena_enabled() or not shm.shm_available():
            return None
        token = getattr(token, "master", token)
        if slab.targets is not getattr(token, "targets", None) or (
            slab.factors is not getattr(token, "factors", None)
        ):
            # The slab was built from universe-specific fresh arrays; the
            # snapshot object does not describe them.
            return None
        try:
            return self._refs_for(token, slab.targets, slab.factors, slab.absorb, slab.allowed)
        except shm.ShmUnavailable:  # pragma: no cover - raced disablement
            return None

    def _refs_for(
        self,
        token,
        targets: np.ndarray,
        factors: np.ndarray,
        absorb: np.ndarray,
        allowed: Optional[np.ndarray],
    ) -> Optional[Dict[str, Optional[shm.ArrayRef]]]:
        entry = self._entries.get(id(token))
        if entry is not None and not entry.arena.closed:
            # Hit: the edge block is resident; only the small per-call
            # vertex masks are refreshed (the ``allowed`` set genuinely
            # varies call to call).
            if self._store_masks(entry.arena, absorb, allowed):
                POOL_STATS.arena_hits += 1
                self._entries.move_to_end(id(token))
                return self._refs(entry.arena, allowed)
            # Mask regions overflowed (should not happen while ids are
            # stable); fall through to a re-export.

        note = getattr(token, "patch_note", None)
        if note is not None and note.same_ids:
            parent_entry = self._entries.get(id(note.parent))
            if (
                parent_entry is not None
                and not parent_entry.arena.closed
                and self._patch(parent_entry, token, targets, factors, note)
                and self._store_masks(parent_entry.arena, absorb, allowed)
            ):
                POOL_STATS.arena_patches += 1
                del self._entries[id(note.parent)]
                parent_entry.token = token
                self._entries[id(token)] = parent_entry
                return self._refs(parent_entry.arena, allowed)

        return self._export(token, targets, factors, absorb, allowed)

    # ------------------------------------------------------------------
    def _patch(
        self,
        entry: _Entry,
        token,
        targets: np.ndarray,
        factors: np.ndarray,
        note,
    ) -> bool:
        """In-place O(changed) copy of a patched snapshot; False = re-export."""
        arena = entry.arena
        if not arena.fits(_TARGETS, targets) or not arena.fits(_FACTORS, factors):
            return False
        offsets = getattr(token, "offsets", None)
        if offsets is None:
            return False
        changed = note.changed_rows
        if changed.size == 0:
            spans: list = []
            copied = 0
        elif note.counts_changed:
            # Row lengths shifted: every slot from the first changed row's
            # offset on may have moved; the prefix is byte-identical.
            start = int(offsets[int(changed[0])])
            spans = [(start, int(targets.size))]
            copied = int(targets.size) - start
        else:
            # Same offsets: only the changed rows' own slot ranges differ.
            breaks = np.nonzero(np.diff(changed) != 1)[0] + 1
            spans = []
            copied = 0
            for run in np.split(changed, breaks):
                lo = int(offsets[int(run[0])])
                hi = int(offsets[int(run[-1]) + 1])
                spans.append((lo, hi))
                copied += hi - lo
        if copied > churn_fraction() * max(int(targets.size), 1):
            return False
        arena.patch(_TARGETS, targets, spans)
        arena.patch(_FACTORS, factors, spans)
        return True

    def _store_masks(
        self,
        arena: shm.PersistentArena,
        absorb: np.ndarray,
        allowed: Optional[np.ndarray],
    ) -> bool:
        if not arena.fits(_ABSORB, absorb):
            return False
        if allowed is not None and not arena.fits(_ALLOWED, allowed):
            return False
        arena.store(_ABSORB, absorb)
        if allowed is not None:
            arena.store(_ALLOWED, allowed)
        return True

    def _export(
        self,
        token,
        targets: np.ndarray,
        factors: np.ndarray,
        absorb: np.ndarray,
        allowed: Optional[np.ndarray],
    ) -> Dict[str, Optional[shm.ArrayRef]]:
        """Full export (miss): reuse the resident segment when everything
        still fits, else allocate a fresh arena (power-of-two regions, so an
        overflow at least doubles the region that forced it)."""
        POOL_STATS.arena_misses += 1
        # The allowed region is always provisioned at full vertex width so a
        # later call that does carry an allowed mask patches in place.
        allowed_arr = allowed if allowed is not None else np.zeros(absorb.shape, bool)
        entry = self._entries.pop(id(token), None)
        if entry is None:
            note = getattr(token, "patch_note", None)
            if note is not None:
                entry = self._entries.pop(id(note.parent), None)
        if entry is not None and not entry.arena.closed and all(
            entry.arena.fits(position, array)
            for position, array in (
                (_TARGETS, targets),
                (_FACTORS, factors),
                (_ABSORB, absorb),
                (_ALLOWED, allowed_arr),
            )
        ):
            arena = entry.arena
            arena.store(_TARGETS, targets)
            arena.store(_FACTORS, factors)
            arena.store(_ABSORB, absorb)
            if allowed is not None:
                arena.store(_ALLOWED, allowed)
        else:
            if entry is not None and not entry.arena.closed:
                entry.arena.close()
            arena = shm.PersistentArena([targets, factors, absorb, allowed_arr])
        self._entries[id(token)] = _Entry(token, arena)
        while len(self._entries) > self._max_entries:
            _key, evicted = self._entries.popitem(last=False)
            evicted.arena.close()
        return self._refs(arena, allowed)

    @staticmethod
    def _refs(
        arena: shm.PersistentArena, allowed: Optional[np.ndarray]
    ) -> Dict[str, Optional[shm.ArrayRef]]:
        return {
            "targets": arena.ref(_TARGETS),
            "factors": arena.ref(_FACTORS),
            "absorb": arena.ref(_ABSORB),
            "allowed": arena.ref(_ALLOWED) if allowed is not None else None,
        }

    # ------------------------------------------------------------------
    def bytes_copied(self) -> int:
        """Total bytes copied into the resident arenas (exports + patches)."""
        return sum(e.arena.bytes_copied for e in self._entries.values())

    def reset(self) -> None:
        """Close every resident arena and forget all entries."""
        while self._entries:
            _key, entry = self._entries.popitem()
            try:
                entry.arena.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass


_CACHE: Optional[SlabArenaCache] = None


def slab_arena_cache() -> SlabArenaCache:
    """The process-wide arena cache used by the parallel backend."""
    global _CACHE
    if _CACHE is None:
        _CACHE = SlabArenaCache()
    return _CACHE


def reset_slab_arenas() -> None:
    """Drop every resident arena (pool teardown / test isolation)."""
    if _CACHE is not None:
        _CACHE.reset()
