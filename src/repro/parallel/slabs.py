"""Array-only kernel slabs: the numpy hot loops, free of engine objects.

Every vectorized kernel of the reproduction — the delta-accumulative
superstep of :mod:`repro.engine.dense_propagation`, Layph's per-subgraph
local upload and shortcut assignments (:mod:`repro.layph.vectorized`), and
the BSP refinement pulls of the GraphBolt/DZiG engines — bottoms out in the
functions of this module.  They operate exclusively on plain numpy arrays
and Python scalars bundled into :class:`PropagationSlab`: no ``Graph``, no
``AlgorithmSpec``, no engine objects, no adjacency callables.  That boundary
is what lets a slab cross a process boundary — the arrays can live in
``multiprocessing.shared_memory`` segments (:mod:`repro.parallel.shm`) and
be consumed by the persistent worker pool (:mod:`repro.parallel.executor`)
with zero-copy attach.

The algebra is the classified delta-accumulative one (see
:func:`repro.engine.dense_propagation.classify_spec`), reduced to scalars:

* ``selective`` — ``min`` aggregation with identity ``+inf`` (SSSP/BFS
  style) when true, ``+`` aggregation with identity ``0`` (PageRank/PHP
  style) when false;
* ``combine_add`` — messages combine as ``value + factor`` when true,
  ``value * factor`` when false;
* ``tolerance`` — the accumulative significance threshold (selective
  algorithms use ``!= identity``).

Every kernel preserves the bitwise-identity contract of the object-based
entry points that build the slabs: active vertices in ascending dense-index
order, CSR slot order for the unbuffered ``np.add.at`` / ``np.minimum.at``
scatters, and the dict-loop termination quirks replayed exactly.  This
module must not import anything from ``repro`` — the lint test
``tests/parallel/test_slab_signatures.py`` enforces both the import
discipline and the arrays-and-scalars-only call signatures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np


def expand_slots(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Flat CSR slot indices for the concatenated rows ``[starts, starts+counts)``.

    Ordered row by row (rows in the order given, slots in CSR order) — the
    exact scatter order of the Python propagation loop.  Mirrors
    :func:`repro.graph.csr.expand_edges`, restated here so the slab kernels
    stay free of ``repro`` imports.
    """
    cumulative = np.cumsum(counts)
    row_offset = np.repeat(starts - np.concatenate(([0], cumulative[:-1])), counts)
    return np.arange(total, dtype=np.int64) + row_offset


class SlabNonConvergence(Exception):
    """A capped slab run still holds significant pending messages.

    The object-based adapters translate this into the engine-level
    :class:`repro.engine.propagation.NonConvergenceError` (the slab layer
    cannot import it).
    """

    def __init__(
        self,
        remaining: int,
        rounds: int,
        recorded: Optional[List[Tuple[int, int, int]]] = None,
    ) -> None:
        super().__init__(
            f"{remaining} significant pending messages remain after {rounds} rounds"
        )
        self.remaining = remaining
        self.rounds = rounds
        #: the per-round triples completed before the cap (the reference
        #: loop records them in its metrics before raising)
        self.recorded = recorded if recorded is not None else []


@dataclass
class PropagationSlab:
    """One propagation work unit as plain arrays plus algebra scalars.

    The CSR block (``offsets``/``targets``/``factors``/``out_degree``) and
    the masks are read-only during a run; the per-vertex working arrays
    (``state``/``pending``/``in_dict``/``state_touched`` and the optional
    ``arrived`` pair) are mutated in place.  ``boundary`` switches a slab
    into upload mode: active boundary rows accumulate into ``arrived``
    instead of revising their state (Layph's phase-2 semantics).
    """

    # CSR block (read-only during the run)
    offsets: np.ndarray
    targets: np.ndarray
    factors: np.ndarray
    out_degree: np.ndarray
    # per-vertex working arrays (mutated in place)
    state: np.ndarray
    pending: np.ndarray
    in_dict: np.ndarray
    state_touched: np.ndarray
    # masks
    absorb: np.ndarray
    allowed: Optional[np.ndarray] = None
    boundary: Optional[np.ndarray] = None
    arrived: Optional[np.ndarray] = None
    arrived_touched: Optional[np.ndarray] = None
    # algebra scalars
    selective: bool = True
    combine_add: bool = True
    identity: float = math.inf
    tolerance: float = 0.0
    #: opaque identity token of the compiled snapshot the CSR block was
    #: taken from (``None`` for universe-specific fresh arrays).  The slab
    #: kernels never touch it; the persistent arena cache
    #: (:mod:`repro.parallel.arena`) keys resident shared-memory exports on
    #: it so repeated runs over the same snapshot ship zero or O(changed)
    #: bytes instead of the whole block.
    block_token: Optional[object] = None


def significant_count(slab: PropagationSlab) -> int:
    """Number of pending entries that would activate next round."""
    if slab.selective:
        mask = (slab.pending != slab.identity) & slab.in_dict
    else:
        mask = (np.abs(slab.pending) > slab.tolerance) & slab.in_dict
    return int(np.count_nonzero(mask))


def gather_messages(
    targets: np.ndarray,
    factors: np.ndarray,
    absorb: np.ndarray,
    allowed: Optional[np.ndarray],
    starts: np.ndarray,
    counts: np.ndarray,
    total: int,
    out_values: np.ndarray,
    selective: bool,
    combine_add: bool,
    identity: float,
    tolerance: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """The scatter half of one superstep: ``(kept_targets, kept_messages)``.

    Pure gather — no per-vertex state is touched — over the CSR rows
    ``[starts, starts+counts)`` in row order, so a row-partitioned split of
    ``starts``/``counts``/``out_values`` concatenated back in partition
    order reproduces the unpartitioned result exactly.  This is the kernel
    the worker pool runs for row-partitioned parallel supersteps.
    """
    slots = expand_slots(starts, counts, total)
    edge_targets = targets[slots]
    messages = np.repeat(out_values, counts)
    if combine_add:
        messages = messages + factors[slots]
    else:
        messages = messages * factors[slots]
    keep = ~absorb[edge_targets]
    if allowed is not None:
        keep &= allowed[edge_targets]
    if selective:
        keep &= messages != identity
    else:
        keep &= np.abs(messages) > tolerance
    return edge_targets[keep], messages[keep]


def scatter_messages(
    slab: PropagationSlab, kept_targets: np.ndarray, kept_messages: np.ndarray
) -> None:
    """Apply kept messages to the pending array (unbuffered, slot order)."""
    if kept_targets.size == 0:
        return
    if slab.selective:
        np.minimum.at(slab.pending, kept_targets, kept_messages)
    else:
        np.add.at(slab.pending, kept_targets, kept_messages)
    slab.in_dict[kept_targets] = True


def propagation_superstep(
    slab: PropagationSlab,
    gather: Optional[Callable] = None,
) -> Optional[Tuple[int, int, int]]:
    """One superstep; ``(activations, active, updates)`` or ``None`` when
    no pending entry is significant (the caller decides how to terminate).

    ``gather`` overrides the message gather (same contract as calling
    :func:`gather_messages` on the slab's own arrays) — the parallel
    backend injects a row-partitioned version that fans the gather out to
    worker processes and concatenates the chunks in partition order.
    """
    pending, in_dict = slab.pending, slab.in_dict
    identity = slab.identity
    if slab.selective:
        significant = (pending != identity) & in_dict
    else:
        significant = (np.abs(pending) > slab.tolerance) & in_dict
    active = np.nonzero(significant)[0]
    if active.size == 0:
        return None
    deltas = pending[active]
    pending[active] = identity
    in_dict[active] = False

    if slab.boundary is not None:
        # Upload mode: boundary rows accumulate into ``arrived`` and never
        # re-propagate (their revision happens on the upper layer).
        at_boundary = slab.boundary[active]
        boundary_idx = active[at_boundary]
        if boundary_idx.size:
            boundary_deltas = deltas[at_boundary]
            if slab.selective:
                slab.arrived[boundary_idx] = np.minimum(
                    slab.arrived[boundary_idx], boundary_deltas
                )
            else:
                slab.arrived[boundary_idx] = (
                    slab.arrived[boundary_idx] + boundary_deltas
                )
            slab.arrived_touched[boundary_idx] = True
        internal_idx = active[~at_boundary]
        internal_deltas = deltas[~at_boundary]
    else:
        internal_idx, internal_deltas = active, deltas

    state = slab.state
    old_states = state[internal_idx]
    if slab.selective:
        new_states = np.minimum(old_states, internal_deltas)
        improved = new_states != old_states
        scatterers = internal_idx[improved]
        state[scatterers] = new_states[improved]
        out_values = new_states[improved]
    else:
        state[internal_idx] = old_states + internal_deltas
        scatterers = internal_idx
        out_values = internal_deltas
    slab.state_touched[scatterers] = True

    counts = slab.out_degree[scatterers]
    total = int(counts.sum())
    if total:
        starts = slab.offsets[scatterers]
        if gather is None:
            kept_targets, kept_messages = gather_messages(
                slab.targets,
                slab.factors,
                slab.absorb,
                slab.allowed,
                starts,
                counts,
                total,
                out_values,
                slab.selective,
                slab.combine_add,
                slab.identity,
                slab.tolerance,
            )
        else:
            kept_targets, kept_messages = gather(slab, starts, counts, total, out_values)
        scatter_messages(slab, kept_targets, kept_messages)
    return total, int(active.size), int(scatterers.size)


def run_propagation(
    slab: PropagationSlab,
    max_rounds: Optional[int] = None,
    gather: Optional[Callable] = None,
) -> List[Tuple[int, int, int]]:
    """Run the delta-accumulative loop to convergence on one slab.

    Returns the per-round ``(activations, active, updates)`` triples.
    Termination replays the dict loop exactly: insignificant leftovers end
    the loop with the pending membership cleared (the final, unrecorded
    clearing round), while a ``max_rounds`` cap breaks with the leftovers
    preserved for write-back.
    """
    rounds: List[Tuple[int, int, int]] = []
    while slab.in_dict.any():
        if max_rounds is not None and len(rounds) >= max_rounds:
            break
        step = propagation_superstep(slab, gather)
        if step is None:
            slab.in_dict[:] = False
            break
        rounds.append(step)
    return rounds


def run_upload(
    slab: PropagationSlab,
    max_rounds: int,
    gather: Optional[Callable] = None,
) -> List[Tuple[int, int, int]]:
    """Run one local upload (boundary-absorb) slab to convergence.

    Like :func:`run_propagation` but with Layph's upload semantics: hitting
    the round cap with significant messages still pending raises
    :class:`SlabNonConvergence` *before* consuming them (a partial upload
    would leave stale internal states behind), and insignificant leftovers
    simply end the loop (the upload discards its pending array).
    """
    rounds: List[Tuple[int, int, int]] = []
    while slab.in_dict.any():
        if len(rounds) >= max_rounds:
            remaining = significant_count(slab)
            if remaining:
                raise SlabNonConvergence(remaining, len(rounds), rounds)
            break
        step = propagation_superstep(slab, gather)
        if step is None:
            break
        rounds.append(step)
    return rounds


def run_shortcut_solves(
    offsets: np.ndarray,
    targets: np.ndarray,
    factors: np.ndarray,
    full_degree: np.ndarray,
    silenced_degree: np.ndarray,
    absorb: np.ndarray,
    source_rows: np.ndarray,
    states_out: np.ndarray,
    first_mask: np.ndarray,
    final_mask: np.ndarray,
    run_first: bool,
    selective: bool,
    combine_add: bool,
    identity: float,
    tolerance: float,
    unit: float,
) -> List[List[Tuple[int, int, int]]]:
    """One subgraph's batch of boundary-source shortcut solves.

    Each solve replays Layph's two-phase neutral propagation from one
    boundary source exactly as the serial reference runs it through
    :func:`run_propagation`:

    * phase 1 (skipped unless ``run_first``): a single round with every
      *other* boundary row silenced — ``silenced_degree`` has all boundary
      rows zeroed, so the phase runs with the source's own row re-opened
      from ``full_degree``;
    * phase 2: unlimited rounds with the source silenced too, i.e. exactly
      ``silenced_degree``.

    Carrying ``state``/``pending``/``in_dict`` across the phases is
    bit-equivalent to the reference's dict write-back/rebuild round-trip
    (rows with a cleared ``in_dict`` are never read again).  ``states_out``
    row ``i`` receives solve ``i``'s final per-row states; ``first_mask`` /
    ``final_mask`` row ``i`` record which rows were touched after phase 1 /
    overall — the coordinator rebuilds the reference's dict *insertion
    order* from them (phase-1 rows ascending, then newly touched rows
    ascending), which downstream accumulative float sums depend on.

    Returns the per-round ``(activations, active, updates)`` triples of
    both phases, per solve, for metric replay in serial order.
    """
    n = int(silenced_degree.size)
    pending = np.empty(n, dtype=np.float64)
    in_dict = np.empty(n, dtype=bool)
    touched = np.empty(n, dtype=bool)
    results: List[List[Tuple[int, int, int]]] = []
    for position in range(int(source_rows.size)):
        row = int(source_rows[position])
        state = states_out[position]
        state[...] = identity
        pending[:] = identity
        in_dict[:] = False
        touched[:] = False
        pending[row] = unit
        in_dict[row] = True
        slab = PropagationSlab(
            offsets=offsets,
            targets=targets,
            factors=factors,
            out_degree=silenced_degree,
            state=state,
            pending=pending,
            in_dict=in_dict,
            state_touched=touched,
            absorb=absorb,
            selective=selective,
            combine_add=combine_add,
            identity=identity,
            tolerance=tolerance,
        )
        rounds: List[Tuple[int, int, int]] = []
        if run_first:
            opened = silenced_degree.copy()
            opened[row] = full_degree[row]
            slab.out_degree = opened
            rounds.extend(run_propagation(slab, 1))
            slab.out_degree = silenced_degree
        first_mask[position][:] = touched
        rounds.extend(run_propagation(slab, None))
        final_mask[position][:] = touched
        results.append(rounds)
    return results


def assign_best_offers(
    offsets: np.ndarray,
    counts: np.ndarray,
    targets: np.ndarray,
    factors: np.ndarray,
    source_values: np.ndarray,
    best: np.ndarray,
    identity: float,
    combine_add: bool,
) -> int:
    """Fold each live source's offers into ``best`` (min); returns the
    number of shortcut entries visited (the metered F-work).

    The selective assignment of one Layph subgraph: row ``i`` of the
    shortcut CSR lists the internal-target entries of the ``i``-th boundary
    vertex, ``source_values[i]`` its upper-layer state; ``best`` (mutated
    in place) is indexed by internal-vertex position.
    """
    live = np.nonzero(source_values != identity)[0]
    live_counts = counts[live]
    total = int(live_counts.sum())
    if total:
        slots = expand_slots(offsets[live], live_counts, total)
        offers = np.repeat(source_values[live], live_counts)
        if combine_add:
            offers = offers + factors[slots]
        else:
            offers = offers * factors[slots]
        np.minimum.at(best, targets[slots], offers)
    return total


def assign_deltas(
    offsets: np.ndarray,
    counts: np.ndarray,
    targets: np.ndarray,
    factors: np.ndarray,
    source_deltas: np.ndarray,
    live: np.ndarray,
    values: np.ndarray,
    allowed: np.ndarray,
    combine_add: bool,
) -> Tuple[np.ndarray, int]:
    """Push each live source's delta through its shortcut row into ``values``.

    The accumulative assignment of one Layph subgraph: applies
    ``combine(delta, factor)`` with ``np.add.at`` in row order (ascending
    boundary position, table order within — the Python loop's exact order),
    skipping targets where ``allowed`` is false.  Returns the boolean mask
    of touched value rows and the number of applied entries.
    """
    live_rows = np.nonzero(live)[0]
    live_counts = counts[live_rows]
    total = int(live_counts.sum())
    touched = np.zeros(values.size, dtype=bool)
    applied = 0
    if total:
        slots = expand_slots(offsets[live_rows], live_counts, total)
        edge_targets = targets[slots]
        messages = np.repeat(source_deltas[live_rows], live_counts)
        if combine_add:
            messages = messages + factors[slots]
        else:
            messages = messages * factors[slots]
        keep = allowed[edge_targets]
        kept_targets = edge_targets[keep]
        np.add.at(values, kept_targets, messages[keep])
        touched[kept_targets] = True
        applied = int(keep.sum())
    return touched, applied


def pull_rows(
    offsets: np.ndarray,
    targets: np.ndarray,
    factors: np.ndarray,
    out_degree: np.ndarray,
    frontier_rows: np.ndarray,
    previous: np.ndarray,
    level: np.ndarray,
    root: np.ndarray,
    tolerance: float,
    combine_add: bool,
) -> Tuple[int, np.ndarray]:
    """BSP refinement pull: re-aggregate ``frontier_rows`` from the in-CSR.

    ``previous`` is the prior iteration's memoized row, ``level`` the row
    being refined (mutated in place), ``root`` the per-vertex root
    messages.  ``frontier_rows`` must be ascending (the sorted-vertex order
    of the reference); contributions are applied with ``np.add.at`` in slot
    order, so the refined values are bitwise equal to the dict paths.
    Returns ``(activations, changed_rows)``.
    """
    counts = out_degree[frontier_rows]
    total = int(counts.sum())
    values = root[frontier_rows]
    if total:
        slots = expand_slots(offsets[frontier_rows], counts, total)
        sources = targets[slots]
        source_values = previous[sources]
        nan_mask = np.isnan(source_values)
        if nan_mask.any():
            # Absent source columns fall back to the root message, the dict
            # reference's ``previous.get(u, initial_message(u))``.
            source_values = np.where(nan_mask, root[sources], source_values)
        if combine_add:
            contributions = source_values + factors[slots]
        else:
            contributions = source_values * factors[slots]
        np.add.at(
            values,
            np.repeat(np.arange(frontier_rows.size, dtype=np.int64), counts),
            contributions,
        )
    reference = level[frontier_rows]
    with np.errstate(invalid="ignore"):
        unchanged = np.abs(values - reference) <= tolerance
    level[frontier_rows] = values
    return total, frontier_rows[~unchanged]
