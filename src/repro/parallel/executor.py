"""Persistent worker pool running slab kernels across processes.

The pool turns the LPT :class:`repro.parallel.work_stealing.WorkStealingScheduler`
from a simulation into the real dispatcher: ``run(tasks, costs)`` computes
the same greedy longest-task-first assignment the cost model scores and
feeds each worker its task list over a dedicated queue.  Tasks are
``(kind, payload)`` pairs; payloads carry :class:`repro.parallel.shm.ArrayRef`
descriptions for the big arrays (attached zero-copy in the worker) and
plain scalars/small arrays inline.  Results come back on a shared queue
and are re-ordered by task index, so the coordinator's merge loop is
deterministic regardless of which worker finished first — the cornerstone
of the bitwise-identity guarantee.

Task kinds (the worker-side handlers):

* ``"upload"`` — one Layph per-subgraph local upload: rebuild a
  :class:`repro.parallel.slabs.PropagationSlab` from the payload and run
  :func:`repro.parallel.slabs.run_upload`; the mutable arrays live in
  shared memory, so the coordinator reads the revised states directly.
* ``"assign_best"`` / ``"assign_deltas"`` — one subgraph's phase-4
  shortcut assignment (selective / accumulative).
* ``"gather"`` — one row-partition chunk of a propagation superstep's
  message gather (:func:`repro.parallel.slabs.gather_messages`).
* ``"shortcuts"`` — one rebuilt Layph subgraph's batch of boundary-source
  shortcut solves (:func:`repro.parallel.slabs.run_shortcut_solves`).

Every enqueued task carries an *arena header* — the coordinator's current
``(generation, live segments)`` stamp from :mod:`repro.parallel.shm` — and
workers reconcile their cached attachments against it before touching the
payload (:func:`repro.parallel.shm.sync_attachments`).  An unchanged stamp
is a no-op, so steady-state calls over a persistent arena
(:mod:`repro.parallel.arena`) pay zero attach/teardown; a changed stamp
evicts exactly the mappings whose segments are gone.

Pools are cached per worker count and persist across deltas (fork once,
reuse forever); :func:`shutdown_pools` runs at interpreter exit, releasing
every persistent arena segment *before* joining the workers so nothing
leaks into the resource tracker's exit sweep.  Any worker death or in-task
exception raises :class:`WorkerPoolError` and retires the pool — callers
catch it and redo the unit of work serially.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.parallel import shm
from repro.parallel.shm import ArrayRef, attach, detach_all
from repro.parallel.slabs import (
    PropagationSlab,
    SlabNonConvergence,
    assign_best_offers,
    assign_deltas,
    gather_messages,
    run_shortcut_solves,
    run_upload,
)
from repro.parallel.work_stealing import WorkStealingScheduler

#: worker count for the ``numpy-parallel`` backend (default 1 = serial)
WORKERS_ENV_VAR = "REPRO_WORKERS"


class WorkerPoolError(RuntimeError):
    """A worker died or a task failed; the caller should fall back to serial."""


class PoolStats:
    """Process-wide counters of pool failure handling (exposed for tests)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: runs that raised :class:`WorkerPoolError` on the first attempt
        self.failed_runs = 0
        #: runs that were retried on a freshly spawned pool
        self.pool_retries = 0
        #: retries that completed successfully
        self.retry_successes = 0
        #: arena cache served a resident CSR block unchanged
        self.arena_hits = 0
        #: arena cache had to export the full block
        self.arena_misses = 0
        #: arena cache patched only the changed regions in place
        self.arena_patches = 0
        #: pooled per-subgraph shortcut-solve batches dispatched
        self.shortcut_batches = 0


POOL_STATS = PoolStats()


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else 1."""
    if explicit is not None:
        return max(1, int(explicit))
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _resolve_payload(value: Any) -> Any:
    """Recursively replace :class:`ArrayRef` descriptions with shm views."""
    if isinstance(value, ArrayRef):
        return attach(value)
    if isinstance(value, dict):
        return {key: _resolve_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_resolve_payload(item) for item in value)
    return value


def _handle_upload(payload: Dict[str, Any]) -> Dict[str, Any]:
    max_rounds = payload.pop("max_rounds")
    slab = PropagationSlab(**payload)
    try:
        rounds = run_upload(slab, max_rounds)
    except SlabNonConvergence as error:
        return {"rounds": error.recorded, "remaining": error.remaining}
    return {"rounds": rounds, "remaining": 0}


def _handle_assign_best(payload: Dict[str, Any]) -> int:
    return assign_best_offers(**payload)


def _handle_assign_deltas(payload: Dict[str, Any]) -> Dict[str, Any]:
    touched, applied = assign_deltas(**payload)
    return {"touched": touched, "applied": applied}


def _handle_gather(payload: Dict[str, Any]) -> Tuple[Any, Any]:
    return gather_messages(**payload)


def _handle_shortcuts(payload: Dict[str, Any]) -> List[Any]:
    return run_shortcut_solves(**payload)


def _handle_chaos_kill(payload: Dict[str, Any]) -> None:  # pragma: no cover
    """Fault-injection lever: die hard, mid-task, without cleanup.

    ``os._exit`` skips every finally/atexit so the coordinator sees exactly
    what a SIGKILL'd or OOM-killed worker looks like.  Only ever dispatched
    by the chaos tests.
    """
    os._exit(int(payload.get("code", 17)))


_HANDLERS = {
    "upload": _handle_upload,
    "assign_best": _handle_assign_best,
    "assign_deltas": _handle_assign_deltas,
    "gather": _handle_gather,
    "shortcuts": _handle_shortcuts,
    "chaos_kill": _handle_chaos_kill,
}


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover - subprocess
    """Worker loop: sync arena attachments, resolve payload refs, run the
    handler, ship the result."""
    while True:
        item = task_queue.get()
        if item is None:
            break
        index, kind, payload, header = item
        try:
            shm.sync_attachments(*header)
            result = _HANDLERS[kind](_resolve_payload(payload))
            result_queue.put((index, "ok", result))
        except Exception as error:  # noqa: BLE001 - reported to coordinator
            result_queue.put((index, "error", f"{type(error).__name__}: {error}"))
    detach_all()


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class WorkerPool:
    """A persistent set of worker processes fed by LPT assignments."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.num_workers = num_workers
        self._scheduler = WorkStealingScheduler(num_workers)
        self._result_queue = context.Queue()
        self._task_queues = [context.Queue() for _ in range(num_workers)]
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(task_queue, self._result_queue),
                daemon=True,
            )
            for task_queue in self._task_queues
        ]
        for process in self._processes:
            process.start()
        self._closed = False

    @property
    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._processes)

    def run(
        self,
        tasks: Sequence[Tuple[str, Dict[str, Any]]],
        costs: Optional[Sequence[float]] = None,
    ) -> List[Any]:
        """Run ``tasks`` across the pool; results ordered by task index.

        ``costs`` feeds the LPT scheduler (uniform when omitted).  Raises
        :class:`WorkerPoolError` — after retiring the pool — when a worker
        dies or any task fails; the caller redoes the work serially (state
        mutations only ever happen at coordinator-side merge time, so a
        failed run leaves engine state untouched).
        """
        if self._closed:
            raise WorkerPoolError("worker pool is closed")
        if not tasks:
            return []
        weights = list(costs) if costs is not None else [1.0] * len(tasks)
        _makespan, assignments = self._scheduler.schedule(weights)
        # One arena header per batch: workers revalidate their attachment
        # cache against the coordinator's current segment set (a no-op in
        # the steady state, where the generation has not moved).
        header = (shm.arena_generation(), shm.live_segments())
        for worker, indices in enumerate(assignments):
            for index in indices:
                kind, payload = tasks[index]
                self._task_queues[worker].put((index, kind, payload, header))
        results: List[Any] = [None] * len(tasks)
        received = 0
        while received < len(tasks):
            try:
                index, status, value = self._result_queue.get(timeout=1.0)
            except queue.Empty:
                if not all(p.is_alive() for p in self._processes):
                    self._retire()
                    raise WorkerPoolError("a worker process died mid-run")
                continue
            if status == "error":
                self._retire()
                raise WorkerPoolError(f"task {index} failed in worker: {value}")
            results[index] = value
            received += 1
        return results

    def _retire(self) -> None:
        _POOLS.pop(self.num_workers, None)
        self.shutdown()

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)


#: persistent pools, one per worker count
_POOLS: Dict[int, WorkerPool] = {}


def get_pool(num_workers: int) -> WorkerPool:
    """The cached pool for ``num_workers`` (respawned if it died)."""
    pool = _POOLS.get(num_workers)
    if pool is None or not pool.alive:
        if pool is not None:
            pool.shutdown()
        pool = WorkerPool(num_workers)
        _POOLS[num_workers] = pool
    return pool


def run_with_respawn(pool: WorkerPool, build_tasks) -> Tuple[List[Any], WorkerPool]:
    """Run a task batch; on :class:`WorkerPoolError`, retry once on a fresh pool.

    ``build_tasks`` is a zero-argument callable returning ``(tasks, costs)``.
    It runs once per attempt, because a payload is not necessarily reusable
    after a failure: a worker that died mid-task may have half-mutated the
    shared-memory arrays its :class:`ArrayRef`s point at, so mutable payloads
    must be re-exported from their pristine coordinator-side sources.  (The
    caller is responsible for closing any arena ``build_tasks`` allocates —
    including the one orphaned by a failed first attempt.)

    Returns ``(results, pool_used)`` — the caller should adopt ``pool_used``
    for subsequent batches, since the original pool is retired on failure.
    A second failure propagates :class:`WorkerPoolError`; the caller then
    degrades to its serial path exactly as before.
    """
    try:
        tasks, costs = build_tasks()
        return pool.run(tasks, costs), pool
    except WorkerPoolError:
        POOL_STATS.failed_runs += 1
        fresh = get_pool(pool.num_workers)
        POOL_STATS.pool_retries += 1
        tasks, costs = build_tasks()
        results = fresh.run(tasks, costs)
        POOL_STATS.retry_successes += 1
        return results, fresh


def parallel_pool(workers: Optional[int] = None) -> Optional[WorkerPool]:
    """The pool to use for parallel kernels, or ``None`` for serial.

    Serial (``None``) when the resolved worker count is 1 or shared memory
    is unavailable — the graceful-fallback contract of the
    ``numpy-parallel`` backend.
    """
    count = resolve_workers(workers)
    if count <= 1 or not shm.shm_available():
        return None
    return get_pool(count)


def shutdown_pools() -> None:
    """Tear down every cached pool (registered at interpreter exit).

    Persistent arena segments are released *first*, while the worker
    processes are still joinable — a segment surviving into interpreter
    exit shows up as a resource-tracker "leaked shared_memory" warning.
    Idempotent: a second call finds no arenas and no pools.
    """
    try:
        from repro.parallel import arena as _arena

        _arena.reset_slab_arenas()
    except Exception:  # pragma: no cover - teardown is best-effort
        pass
    shm.release_arenas()
    while _POOLS:
        _count, pool = _POOLS.popitem()
        pool.shutdown()


atexit.register(shutdown_pools)
