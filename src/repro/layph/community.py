"""Capped Louvain community detection (the dense-subgraph candidate source).

The paper uses a community-discovery algorithm (Louvain) to find
dense-subgraph candidates and limits the size of each community with a
threshold ``K`` ("as a rule of thumb, K is set around 0.002-0.2% of the total
number of vertices") so that one enormous community does not unbalance the
workload.  This module implements the standard two-phase Louvain method
(local moving + aggregation) on the undirected weighted view of the graph,
with the size cap enforced during local moves.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.graph.graph import Graph


class _LouvainLevel:
    """One level of the Louvain hierarchy (a weighted undirected multigraph)."""

    def __init__(self) -> None:
        self.neighbors: Dict[int, Dict[int, float]] = {}
        self.node_weight: Dict[int, float] = {}
        self.self_loops: Dict[int, float] = {}
        self.node_size: Dict[int, int] = {}
        self.total_weight: float = 0.0

    @classmethod
    def from_graph(cls, graph: Graph) -> "_LouvainLevel":
        level = cls()
        for vertex in graph.vertices():
            level.neighbors[vertex] = {}
            level.self_loops[vertex] = 0.0
            level.node_size[vertex] = 1
        for source, target, weight in graph.edges():
            if source == target:
                level.self_loops[source] += weight
            else:
                level.neighbors[source][target] = (
                    level.neighbors[source].get(target, 0.0) + weight
                )
                level.neighbors[target][source] = (
                    level.neighbors[target].get(source, 0.0) + weight
                )
            level.total_weight += weight
        for vertex in level.neighbors:
            level.node_weight[vertex] = (
                sum(level.neighbors[vertex].values()) + 2.0 * level.self_loops[vertex]
            )
        return level

    def aggregate(self, membership: Dict[int, int]) -> "_LouvainLevel":
        """Collapse communities into super-nodes."""
        aggregated = _LouvainLevel()
        aggregated.total_weight = self.total_weight
        for vertex, community in membership.items():
            if community not in aggregated.neighbors:
                aggregated.neighbors[community] = {}
                aggregated.self_loops[community] = 0.0
                aggregated.node_size[community] = 0
            aggregated.node_size[community] += self.node_size[vertex]
            aggregated.self_loops[community] += self.self_loops[vertex]
        for vertex, edges in self.neighbors.items():
            community = membership[vertex]
            for neighbor, weight in edges.items():
                neighbor_community = membership[neighbor]
                if community == neighbor_community:
                    # Each undirected edge is seen from both endpoints.
                    aggregated.self_loops[community] += weight / 2.0
                else:
                    aggregated.neighbors[community][neighbor_community] = (
                        aggregated.neighbors[community].get(neighbor_community, 0.0)
                        + weight
                    )
        for community in aggregated.neighbors:
            aggregated.node_weight[community] = (
                sum(aggregated.neighbors[community].values())
                + 2.0 * aggregated.self_loops[community]
            )
        return aggregated


def _local_move(
    level: _LouvainLevel,
    max_community_size: Optional[int],
    rng: random.Random,
    max_passes: int = 10,
) -> Dict[int, int]:
    """Greedy modularity-gain local moving with a community size cap."""
    membership = {vertex: vertex for vertex in level.neighbors}
    community_weight = {vertex: level.node_weight[vertex] for vertex in level.neighbors}
    community_size = {vertex: level.node_size[vertex] for vertex in level.neighbors}
    two_m = max(2.0 * level.total_weight, 1e-12)

    nodes = sorted(level.neighbors)
    for _ in range(max_passes):
        moved = 0
        rng.shuffle(nodes)
        for vertex in nodes:
            current = membership[vertex]
            vertex_weight = level.node_weight[vertex]
            vertex_size = level.node_size[vertex]
            # Weight of links from this vertex to each neighboring community.
            links_to: Dict[int, float] = {}
            for neighbor, weight in level.neighbors[vertex].items():
                links_to[membership[neighbor]] = (
                    links_to.get(membership[neighbor], 0.0) + weight
                )
            # Temporarily remove the vertex from its community.
            community_weight[current] -= vertex_weight
            community_size[current] -= vertex_size
            best_community = current
            best_gain = 0.0
            base_links = links_to.get(current, 0.0)
            for candidate, link_weight in links_to.items():
                if candidate == current:
                    continue
                if (
                    max_community_size is not None
                    and community_size[candidate] + vertex_size > max_community_size
                ):
                    continue
                gain = (link_weight - base_links) - vertex_weight * (
                    community_weight[candidate] - community_weight[current]
                ) / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            membership[vertex] = best_community
            community_weight[best_community] += vertex_weight
            community_size[best_community] += vertex_size
            if best_community != current:
                moved += 1
        if moved == 0:
            break
    return membership


def louvain_communities(
    graph: Graph,
    max_community_size: Optional[int] = None,
    seed: int = 0,
    max_levels: int = 5,
) -> List[List[int]]:
    """Detect communities with capped Louvain.

    Args:
        graph: the input (directed) graph; community detection works on its
            undirected weighted view.
        max_community_size: the paper's threshold ``K`` — no community may
            contain more than this many original vertices.  ``None`` disables
            the cap.
        seed: RNG seed for the (shuffled) local-move order.
        max_levels: maximum number of aggregation levels.

    Returns:
        A list of communities, each a sorted list of original vertex ids.
        Every vertex of the graph appears in exactly one community.
    """
    if graph.num_vertices() == 0:
        return []
    rng = random.Random(seed)
    level = _LouvainLevel.from_graph(graph)
    # membership of original vertices in the current level's node ids
    assignment = {vertex: vertex for vertex in graph.vertices()}

    for _ in range(max_levels):
        membership = _local_move(level, max_community_size, rng)
        communities_now = len(set(membership.values()))
        if communities_now == len(level.neighbors):
            break
        assignment = {
            vertex: membership[node] for vertex, node in assignment.items()
        }
        level = level.aggregate(membership)
        if communities_now <= 1:
            break

    grouped: Dict[int, List[int]] = {}
    for vertex, community in assignment.items():
        grouped.setdefault(community, []).append(vertex)
    return [sorted(members) for _, members in sorted(grouped.items())]
