"""Incremental maintenance of the dense-subgraph partition.

Section IV-B: re-running community discovery after every ΔG would be far too
expensive, so Layph only refreshes the partition "when enough ΔG are
accumulated" and otherwise keeps the existing dense subgraphs (incremental
community detectors such as DynaMo or C-Blondel are cited as drop-in
options).  This module implements that contract in its simplest faithful
form: it tracks how much structural change has accumulated relative to the
graph size and tells the caller when a full capped-Louvain rebuild is due;
in between rebuilds, new vertices simply live on the upper layer as outliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.layph.community import louvain_communities


@dataclass
class CommunityMaintainer:
    """Decides when the community partition must be recomputed."""

    #: rebuild once the accumulated unit updates exceed this fraction of |E|
    rebuild_threshold: float = 0.05
    #: size cap (the paper's K) forwarded to Louvain on rebuild
    max_community_size: Optional[int] = None
    seed: int = 0
    accumulated_updates: int = field(default=0, init=False)

    def record(self, delta: GraphDelta) -> None:
        """Account for one applied batch update."""
        self.accumulated_updates += len(delta)

    def needs_rebuild(self, graph: Graph) -> bool:
        """Whether enough change has accumulated to justify a rebuild."""
        edges = max(graph.num_edges(), 1)
        return self.accumulated_updates >= self.rebuild_threshold * edges

    def rebuild(self, graph: Graph) -> List[List[int]]:
        """Recompute the communities and reset the accumulated counter."""
        self.accumulated_updates = 0
        return louvain_communities(
            graph, max_community_size=self.max_community_size, seed=self.seed
        )
