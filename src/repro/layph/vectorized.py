"""Vectorized (numpy) kernels for Layph's online phases.

Three hot loops of :class:`repro.layph.engine.LayphEngine` run here when the
``"numpy"`` backend is selected:

* :func:`local_upload_numpy` — phase 2's per-subgraph revision-message
  propagation with boundary-absorb semantics, compiled onto the subgraph's
  local factor adjacency (one master CSR per adjacency object, memoized
  through :func:`repro.graph.csr_cache.master_factor_csr`);
* :func:`assign_selective_numpy` / :func:`assign_accumulative_numpy` —
  phase 4's shortcut scans, compiled onto a per-subgraph boundary→internal
  shortcut CSR that is cached on the :class:`DenseSubgraph` and invalidated
  whenever the subgraph's shortcut tables are rebuilt.

Every kernel is engineered for exact metric compatibility with the Python
reference loops in ``engine.py`` — identical revised states, arrived
messages, round counts and edge activations — using the same ordering
arguments as :mod:`repro.engine.dense_propagation` (ascending-vertex active
order, CSR slot order for the unbuffered ``np.add.at`` scatters).  Inputs the
array algebra cannot reproduce bit-for-bit (undeclared algebras, NaN-carrying
factors or states) make the kernels return ``None`` and the caller falls back
to the Python loop.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.dense_propagation import (
    AGGREGATE_MIN,
    COMBINE_ADD,
    classify_spec,
)
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import NonConvergenceError
from repro.graph.csr import expand_edges
from repro.graph.csr_cache import csr_cache_enabled, master_factor_csr
from repro.graph.graph import Graph
from repro.parallel.slabs import (
    PropagationSlab,
    SlabNonConvergence,
    assign_best_offers,
    assign_deltas,
    run_upload,
)


# ----------------------------------------------------------------------
# phase 2: local revision-message upload
# ----------------------------------------------------------------------
def build_upload_slab(
    spec,
    subgraph,
    work: Dict[int, float],
    local_pending: Dict[int, float],
) -> Optional[Tuple[PropagationSlab, list]]:
    """Compile one subgraph's local upload into an array slab.

    Returns ``(slab, vertex_ids)`` with the slab in upload mode (boundary
    mask + arrived accumulator set), or ``None`` when the array algebra
    cannot express the spec / the inputs carry NaN — the caller then falls
    back to the Python loop.  Nothing is mutated here, so a ``None`` return
    is always safe.
    """
    kinds = classify_spec(spec)
    if kinds is None:
        return None
    aggregate_kind, combine_kind = kinds
    selective = aggregate_kind == AGGREGATE_MIN

    adjacency = subgraph.local_adjacency
    boundary = subgraph.boundary
    universe = set(local_pending) | set(boundary)
    csr = master_factor_csr(adjacency, universe)
    if csr is None:
        # Caching disabled: compile fresh (identical arrays, no memo).
        from repro.graph.csr import FactorCSR

        csr = FactorCSR.from_factor_adjacency(adjacency, universe=universe)

    ids = csr.vertex_ids
    index = csr.index
    n = csr.num_vertices
    identity = math.inf if selective else 0.0
    tolerance = 0.0 if selective else float(spec.tolerance())

    state_arr = np.fromiter(
        (
            work[vertex] if vertex in work else float(spec.initial_state(vertex))
            for vertex in ids
        ),
        np.float64,
        count=n,
    )
    pending_arr = np.full(n, identity, dtype=np.float64)
    in_dict = np.zeros(n, dtype=bool)
    for vertex, message in local_pending.items():
        position = index[vertex]
        pending_arr[position] = message
        in_dict[position] = True

    # NaN makes the branchy Python min/compare semantics diverge from the
    # array ops; hand such inputs back to the Python loop untouched.
    if (
        np.isnan(csr.factors).any()
        or np.isnan(state_arr).any()
        or np.isnan(pending_arr).any()
    ):
        return None

    boundary_mask = np.zeros(n, dtype=bool)
    for vertex in boundary:
        position = index.get(vertex)
        if position is not None:
            boundary_mask[position] = True
    absorb = np.fromiter((bool(spec.absorbs(v)) for v in ids), bool, count=n)

    slab = PropagationSlab(
        offsets=csr.offsets,
        targets=csr.targets,
        factors=csr.factors,
        out_degree=csr.out_degree,
        state=state_arr,
        pending=pending_arr,
        in_dict=in_dict,
        state_touched=np.zeros(n, dtype=bool),
        absorb=absorb,
        boundary=boundary_mask,
        arrived=np.full(n, identity, dtype=np.float64),
        arrived_touched=np.zeros(n, dtype=bool),
        selective=selective,
        combine_add=combine_kind == COMBINE_ADD,
        identity=identity,
        tolerance=tolerance,
    )
    return slab, ids


def upload_nonconvergence_error(
    subgraph_index: int, spec_name: str, max_rounds: int, remaining: int
) -> NonConvergenceError:
    """The engine-level error for a capped upload (shared with the parallel
    merge path, which must raise the exact message of the serial loop)."""
    return NonConvergenceError(
        f"local revision-message upload in subgraph {subgraph_index} "
        f"did not converge within {max_rounds} rounds for "
        f"{spec_name!r}; {remaining} significant pending "
        "messages remain"
    )


def local_upload_numpy(
    spec,
    subgraph,
    work: Dict[int, float],
    local_pending: Dict[int, float],
    metrics: ExecutionMetrics,
    max_rounds: int = 10_000,
) -> Optional[Dict[int, float]]:
    """Vectorized ``LayphEngine._local_upload``; ``None`` = cannot handle.

    Mirrors the Python loop exactly: internal vertices revise their state in
    place and scatter along the local adjacency, boundary vertices accumulate
    into the returned ``arrived`` map without re-propagating, rounds and edge
    activations are recorded identically (and, like the reference, no
    ``vertex_updates`` are counted).  The loop itself is the array kernel
    :func:`repro.parallel.slabs.run_upload` over the slab built by
    :func:`build_upload_slab`; incompatibility is detected before anything
    is mutated.
    """
    built = build_upload_slab(spec, subgraph, work, local_pending)
    if built is None:
        return None
    slab, ids = built
    try:
        rounds = run_upload(slab, max_rounds)
    except SlabNonConvergence as error:
        # The reference loop records the completed rounds before raising.
        for total, active, _updates in error.recorded:
            metrics.record_round(total, active)
        raise upload_nonconvergence_error(
            subgraph.index, spec.name, max_rounds, error.remaining
        ) from None
    for total, active, _updates in rounds:
        metrics.record_round(total, active)
    for position in np.nonzero(slab.state_touched)[0]:
        work[ids[position]] = float(slab.state[position])
    return {
        ids[position]: float(slab.arrived[position])
        for position in np.nonzero(slab.arrived_touched)[0]
    }


# ----------------------------------------------------------------------
# phase 4: shortcut CSR of one dense subgraph
# ----------------------------------------------------------------------
class _ShortcutCSR:
    """Boundary→internal shortcut tables of one subgraph as CSR arrays.

    Row ``i`` lists the internal-target shortcut entries of the ``i``-th
    boundary vertex (ascending id), each entry in the shortcut table's
    insertion order — the exact scan order of the Python assignment loops.
    """

    __slots__ = (
        "boundary_ids",
        "internal_ids",
        "internal_index",
        "offsets",
        "targets",
        "factors",
        "counts",
    )

    def __init__(self, subgraph) -> None:
        self.boundary_ids = sorted(subgraph.boundary)
        self.internal_ids = sorted(subgraph.internal)
        self.internal_index = {
            vertex: position for position, vertex in enumerate(self.internal_ids)
        }
        internal = subgraph.internal
        rows = []
        for vertex in self.boundary_ids:
            row = [
                (self.internal_index[target], factor)
                for target, factor in subgraph.shortcuts.get(vertex, {}).items()
                if target in internal
            ]
            rows.append(row)
        counts = np.fromiter((len(row) for row in rows), np.int64, count=len(rows))
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        targets = np.empty(total, dtype=np.int64)
        factors = np.empty(total, dtype=np.float64)
        cursor = 0
        for row in rows:
            for target, factor in row:
                targets[cursor] = target
                factors[cursor] = factor
                cursor += 1
        self.offsets = offsets
        self.counts = counts
        self.targets = targets
        self.factors = factors


def _shortcut_csr(subgraph) -> _ShortcutCSR:
    """Per-subgraph shortcut CSR, cached until the tables are rebuilt.

    ``LayeredGraph._refresh_subgraph`` installs fresh ``shortcuts``/
    ``internal`` containers on every rebuild, so identity of those objects is
    the invalidation key (the cache holds strong references, which keeps the
    identities stable).
    """
    cached = getattr(subgraph, "_shortcut_csr_cache", None)
    if (
        cached is not None
        and csr_cache_enabled()
        and cached[0] is subgraph.shortcuts
        and cached[1] is subgraph.internal
    ):
        return cached[2]
    compiled = _ShortcutCSR(subgraph)
    subgraph._shortcut_csr_cache = (subgraph.shortcuts, subgraph.internal, compiled)
    return compiled


# ----------------------------------------------------------------------
# phase 4: revision-message assignment
# ----------------------------------------------------------------------
def assign_selective_numpy(
    spec,
    subgraph,
    work: Dict[int, float],
    metrics: ExecutionMetrics,
) -> Optional[Dict[int, float]]:
    """Vectorized best-offer scan of one subgraph's shortcuts; ``None`` = fall back.

    Returns the ``best`` map (internal vertex → best boundary offer) the
    Python loop would produce — the caller then folds the internal-source
    results and writes the values back, exactly as in the reference.
    """
    kinds = classify_spec(spec)
    if kinds is None or kinds[0] != AGGREGATE_MIN:
        return None
    csr = _shortcut_csr(subgraph)
    identity = spec.aggregate_identity()
    boundary_states = np.fromiter(
        (work.get(vertex, identity) for vertex in csr.boundary_ids),
        np.float64,
        count=len(csr.boundary_ids),
    )
    if np.isnan(csr.factors).any() or np.isnan(boundary_states).any():
        return None
    best = np.fromiter(
        (spec.initial_message(vertex) for vertex in csr.internal_ids),
        np.float64,
        count=len(csr.internal_ids),
    )
    total = assign_best_offers(
        csr.offsets,
        csr.counts,
        csr.targets,
        csr.factors,
        boundary_states,
        best,
        identity,
        kinds[1] == COMBINE_ADD,
    )
    metrics.edge_activations += total
    return dict(zip(csr.internal_ids, best.tolist()))


def assign_accumulative_numpy(
    spec,
    subgraph,
    deltas: Dict[int, float],
    work: Dict[int, float],
    metrics: ExecutionMetrics,
    new_graph: Graph,
) -> Optional[bool]:
    """Vectorized delta push through one subgraph's shortcuts; ``None`` = fall back.

    Applies ``combine(difference, factor)`` of every boundary vertex with a
    significant delta to its internal shortcut targets, in the Python loop's
    exact order (ascending boundary id, table order within), skipping — and
    not counting — absorbing or vanished targets.  Returns ``True`` once the
    ``work`` map has been revised.
    """
    kinds = classify_spec(spec)
    if kinds is None or kinds[0] == AGGREGATE_MIN:
        return None
    csr = _shortcut_csr(subgraph)
    if np.isnan(csr.factors).any():
        return None
    boundary_deltas = np.zeros(len(csr.boundary_ids), dtype=np.float64)
    live_mask = np.zeros(len(csr.boundary_ids), dtype=bool)
    for position, vertex in enumerate(csr.boundary_ids):
        difference = deltas.get(vertex)
        if difference is None or not spec.is_significant(difference):
            continue
        if math.isnan(difference):
            return None
        boundary_deltas[position] = difference
        live_mask[position] = True

    internal_ids = csr.internal_ids
    values = np.fromiter(
        (
            work[vertex] if vertex in work else float(spec.initial_state(vertex))
            for vertex in internal_ids
        ),
        np.float64,
        count=len(internal_ids),
    )
    if np.isnan(values).any():
        return None
    allowed = np.fromiter(
        (
            not spec.absorbs(vertex) and new_graph.has_vertex(vertex)
            for vertex in internal_ids
        ),
        bool,
        count=len(internal_ids),
    )

    touched, applied = assign_deltas(
        csr.offsets,
        csr.counts,
        csr.targets,
        csr.factors,
        boundary_deltas,
        live_mask,
        values,
        allowed,
        kinds[1] == COMBINE_ADD,
    )
    metrics.edge_activations += applied
    for position in np.nonzero(touched)[0]:
        work[internal_ids[position]] = float(values[position])
    return True


# ----------------------------------------------------------------------
# phase 3 prep: upper-layer trim/seed after invalidation
# ----------------------------------------------------------------------
class _UpperInCSR:
    """The upper layer's *incoming* links as CSR arrays.

    Row ``i`` lists the in-links of the ``i``-th upper vertex with in-links
    (ascending id), each slot in ``upper_in_adjacency``'s list order; slot
    sources are compact indices into ``source_ids`` so per-call states
    materialize once over the source universe instead of per slot.
    """

    __slots__ = ("row_index", "offsets", "counts", "sources", "factors", "source_ids")

    def __init__(self, incoming: Dict[int, list]) -> None:
        row_ids = sorted(incoming)
        self.row_index = {vertex: position for position, vertex in enumerate(row_ids)}
        self.source_ids = sorted(
            {source for row in incoming.values() for source, _factor in row}
        )
        source_index = {
            vertex: position for position, vertex in enumerate(self.source_ids)
        }
        counts = np.fromiter(
            (len(incoming[vertex]) for vertex in row_ids), np.int64, count=len(row_ids)
        )
        offsets = np.zeros(len(row_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        sources = np.empty(total, dtype=np.int64)
        factors = np.empty(total, dtype=np.float64)
        cursor = 0
        for vertex in row_ids:
            for source, factor in incoming[vertex]:
                sources[cursor] = source_index[source]
                factors[cursor] = factor
                cursor += 1
        self.offsets = offsets
        self.counts = counts
        self.sources = sources
        self.factors = factors


def _upper_in_csr(layered) -> _UpperInCSR:
    """Compiled upper in-CSR, cached on (adjacency identity, version).

    The same invalidation key as ``LayeredGraph.upper_in_adjacency``'s own
    memo: replacing the upper adjacency object or patching its rows (version
    bump) both recompile; with caching disabled every call compiles fresh.
    """
    adjacency = layered.upper_adjacency
    cached = getattr(layered, "_upper_in_csr_cache", None)
    if (
        cached is not None
        and csr_cache_enabled()
        and cached[0] is adjacency
        and cached[1] == adjacency.version
    ):
        return cached[2]
    compiled = _UpperInCSR(layered.upper_in_adjacency())
    layered._upper_in_csr_cache = (adjacency, adjacency.version, compiled)
    return compiled


def seed_tainted_upper(
    spec,
    layered,
    tainted,
    work: Dict[int, float],
    lup_pending: Dict[int, float],
    metrics: ExecutionMetrics,
) -> bool:
    """Vectorized trim/seed of invalidated upper vertices; ``False`` = fall back.

    Mirrors the reference loop in ``LayphEngine._selective_upload`` exactly:
    every in-link of a tainted vertex counts one edge activation (before any
    skip), tainted and identity-state sources contribute nothing (the caller
    reset tainted states to the identity, so one state mask covers both
    skips), surviving offers fold into the initial message with the
    order-independent min, and the significant results seed ``lup_pending``
    in ascending vertex order.  Selective (min-aggregate) specs only; NaN in
    factors, states or initial messages hands back to the Python loop before
    anything is mutated.
    """
    kinds = classify_spec(spec)
    if kinds is None or kinds[0] != AGGREGATE_MIN:
        return False
    combine_add = kinds[1] == COMBINE_ADD
    identity = float(spec.aggregate_identity())
    csr = _upper_in_csr(layered)
    if np.isnan(csr.factors).any():
        return False
    rows = sorted(tainted)
    best = np.fromiter(
        (
            float(spec.initial_message(vertex)) if vertex >= 0 else identity
            for vertex in rows
        ),
        np.float64,
        count=len(rows),
    )
    source_states = np.fromiter(
        (work.get(vertex, identity) for vertex in csr.source_ids),
        np.float64,
        count=len(csr.source_ids),
    )
    if np.isnan(best).any() or np.isnan(source_states).any():
        return False
    positions = np.fromiter(
        (csr.row_index.get(vertex, -1) for vertex in rows), np.int64, count=len(rows)
    )
    present = positions >= 0
    counts = csr.counts[positions[present]]
    total = int(counts.sum())
    metrics.edge_activations += total
    if total:
        slots = expand_edges(csr.offsets[positions[present]], counts, total)
        states = source_states[csr.sources[slots]]
        keep = states != identity
        if combine_add:
            offers = states[keep] + csr.factors[slots][keep]
        else:
            offers = states[keep] * csr.factors[slots][keep]
        row_of_slot = np.repeat(np.nonzero(present)[0], counts)
        np.minimum.at(best, row_of_slot[keep], offers)
    for position, vertex in enumerate(rows):
        value = float(best[position])
        if spec.is_significant(value):
            lup_pending[vertex] = spec.aggregate(lup_pending.get(vertex, identity), value)
    return True
