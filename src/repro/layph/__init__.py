"""Layph: the paper's layered-graph incremental processing framework.

The construction pipeline (Section IV):

1. :mod:`repro.layph.community` — capped Louvain community detection provides
   dense-subgraph candidates;
2. :mod:`repro.layph.dense` — entry/exit/internal classification and the
   density rule ``|V_I|·|V_O| < |E_i|`` select the dense subgraphs;
3. :mod:`repro.layph.replication` — high-degree boundary neighbours are
   replicated as proxy vertices to shrink the skeleton;
4. :mod:`repro.layph.shortcuts` — per-subgraph shortcut weights are derived
   automatically from the algorithm's ``F``/``G`` (Definition 3);
5. :mod:`repro.layph.layered_graph` — the two-layer structure (``Lup`` /
   ``Llow``) is assembled.

The online engine (Section V) lives in :mod:`repro.layph.engine` and runs the
paper's four phases: layered-graph update, revision-message upload, iterative
computation on the upper layer, and revision-message assignment.
"""

from repro.layph.community import louvain_communities
from repro.layph.dense import BoundaryClassification, classify_boundary, is_dense
from repro.layph.layered_graph import DenseSubgraph, LayeredGraph, LayphConfig, build_layered_graph
from repro.layph.engine import LayphEngine

__all__ = [
    "louvain_communities",
    "BoundaryClassification",
    "classify_boundary",
    "is_dense",
    "DenseSubgraph",
    "LayeredGraph",
    "LayphConfig",
    "build_layered_graph",
    "LayphEngine",
]
