"""The two-layer graph structure (Section IV) and its maintenance.

``LayeredGraph`` holds:

* a list of :class:`DenseSubgraph` objects — the lower layer ``Llow``: each
  records its members, its entry/exit/internal split (after optional vertex
  replication), its intra-subgraph *factor* adjacency and its shortcut tables;
* the upper layer ``Lup`` — a factor adjacency over the boundary vertices of
  all dense subgraphs, the proxies, and the outliers (vertices in no dense
  subgraph); its links are the boundary-to-boundary shortcuts, the original
  edges that do not lie inside any dense subgraph, and the host/proxy links
  introduced by replication.

Links everywhere carry explicit propagation factors (``edge_factor`` values of
the algorithm, or shortcut weights), so the structure is algorithm-specific —
exactly as in the paper, where shortcut weights are deduced from the
user-defined ``F`` and ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import FactorAdjacency
from repro.graph.graph import Graph
from repro.layph.community import louvain_communities
from repro.layph.dense import BoundaryClassification, classify_boundary, select_dense_subgraphs
from repro.layph.replication import ReplicationPlan, plan_replication, reclassify_with_replication
from repro.layph.shortcuts import compute_shortcuts_from, update_shortcut_vector


@dataclass
class LayphConfig:
    """Construction knobs of the layered graph."""

    #: the paper's ``K``: maximum number of vertices per community; ``None``
    #: derives it from the graph size (paper: 0.002-0.2 percent of ``|V|``,
    #: clamped to stay useful on small synthetic graphs).
    max_community_size: Optional[int] = None
    #: candidates smaller than this are never considered dense
    min_subgraph_size: int = 3
    #: apply the ``|V_I|·|V_O| < |E_i|`` rule (Definition 2)
    apply_density_rule: bool = True
    #: replicate outside hosts shared by at least this many boundary vertices
    enable_replication: bool = True
    replication_threshold: int = 3
    #: random seed for community detection
    seed: int = 0
    #: propagation backend for shortcut computation and the upper-layer
    #: iteration (see :mod:`repro.engine.backends`); ``None`` defers to the
    #: ``REPRO_BACKEND`` environment variable
    backend: Optional[str] = None

    def resolved_community_cap(self, num_vertices: int) -> Optional[int]:
        """The community size cap actually used for a graph of this size."""
        if self.max_community_size is not None:
            return self.max_community_size
        if num_vertices == 0:
            return None
        # 0.2% of |V| as in the paper, but never below a useful minimum for
        # the small synthetic graphs used by the test-suite and benchmarks.
        return max(64, int(0.002 * num_vertices))


@dataclass
class DenseSubgraph:
    """One dense subgraph of the lower layer (plus its shortcut tables)."""

    index: int
    #: real graph vertices assigned to this subgraph
    members: Set[int]
    #: entry/exit/internal split; entry and exit include proxy vertices
    entry: Set[int] = field(default_factory=set)
    exit: Set[int] = field(default_factory=set)
    internal: Set[int] = field(default_factory=set)
    #: proxy id -> host id
    proxies: Dict[int, int] = field(default_factory=dict)
    #: original cross edges rewired through proxies (excluded from Lup)
    rewired_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: host/proxy links contributed to the upper layer
    upper_links: List[Tuple[int, int, float]] = field(default_factory=list)
    #: intra-subgraph factor adjacency (members and proxies)
    local_adjacency: FactorAdjacency = field(default_factory=FactorAdjacency)
    #: boundary vertex -> {target vertex -> shortcut factor}
    shortcuts: Dict[int, Dict[int, float]] = field(default_factory=dict)

    @property
    def boundary(self) -> Set[int]:
        """Entry plus exit vertices (proxies included)."""
        return self.entry | self.exit

    @property
    def all_vertices(self) -> Set[int]:
        """Members plus proxies."""
        return self.members | set(self.proxies)

    def shortcut_count(self) -> int:
        """Number of shortcut entries (the Figure 11a space metric)."""
        return sum(len(targets) for targets in self.shortcuts.values())

    def boundary_shortcut_links(self) -> Iterable[Tuple[int, int, float]]:
        """Shortcuts whose target is a boundary vertex (they live on Lup)."""
        boundary = self.boundary
        for source, targets in self.shortcuts.items():
            for target, factor in targets.items():
                if target in boundary:
                    yield source, target, factor

    def internal_shortcuts(self, source: int) -> Dict[int, float]:
        """Shortcuts from ``source`` restricted to internal targets."""
        return {
            target: factor
            for target, factor in self.shortcuts.get(source, {}).items()
            if target in self.internal
        }


def _adjacency_state(adjacency: FactorAdjacency) -> dict:
    """JSON-able form of a factor adjacency — row order and version preserved.

    The row (and per-row link) order fixes the fold order of the propagation
    float sums, and the mutation counter keys the compiled-CSR memo, so both
    travel through the durable snapshot verbatim.
    """
    return {
        "rows": [
            [source, [[target, factor] for target, factor in row]]
            for source, row in adjacency._adjacency.items()
        ],
        "version": adjacency.version,
    }


def _adjacency_from_state(payload: dict) -> FactorAdjacency:
    """Rebuild a factor adjacency from :func:`_adjacency_state` output."""
    adjacency = FactorAdjacency(
        {
            int(source): [(int(target), float(factor)) for target, factor in row]
            for source, row in payload["rows"]
        }
    )
    adjacency._version = int(payload["version"])
    return adjacency


def _dedup_min_links(row: Iterable[Tuple[int, float]]) -> Dict[int, float]:
    """Per-target minimum over one upper row's links.

    Parallel upper-layer links can appear when a shortcut coexists with an
    original edge; the diff keeps the better one per target — the same
    reduction ``LayphEngine._flatten_links`` applies (the propagation itself
    uses both links).
    """
    links: Dict[int, float] = {}
    for target, factor in row:
        current = links.get(target)
        links[target] = factor if current is None else min(current, factor)
    return links


class UpperDiff:
    """Row-level upper-layer link diff of one delta (selective upload input).

    Produced by :meth:`LayeredGraph.patch_upper`: the dirty sources' old rows
    captured before the patch, their freshly derived new rows, and the
    patched adjacency for everything else (rows outside the dirty set are
    untouched, so their pre- and post-delta links coincide).  Exposes exactly
    what the selective invalidation needs — the changed ``(source, target)``
    factor pairs, and the *old* deduplicated out-links of any vertex for the
    dependents walk — in O(dirty rows) instead of the two O(Lup)
    whole-layer flattens the engine used to run per delta.
    """

    __slots__ = ("adjacency", "dirty", "old_rows", "new_rows", "_old_dedup")

    def __init__(
        self,
        adjacency: FactorAdjacency,
        dirty: Set[int],
        old_rows: Dict[int, List[Tuple[int, float]]],
        new_rows: Dict[int, List[Tuple[int, float]]],
    ) -> None:
        self.adjacency = adjacency
        self.dirty = dirty
        self.old_rows = old_rows
        self.new_rows = new_rows
        #: memo of the dirty rows' deduplicated old links — the diff is
        #: per-delta and immutable, and both ``changed_links`` and the
        #: dependents walk ask for the same rows
        self._old_dedup: Dict[int, Dict[int, float]] = {}

    def _old_dedup_of(self, source: int) -> Dict[int, float]:
        links = self._old_dedup.get(source)
        if links is None:
            links = _dedup_min_links(self.old_rows.get(source, ()))
            self._old_dedup[source] = links
        return links

    def old_links_of(self, source: int) -> Dict[int, float]:
        """The pre-delta deduplicated out-links of ``source`` on Lup."""
        if source in self.dirty:
            return self._old_dedup_of(source)
        return _dedup_min_links(self.adjacency(source))

    def changed_links(
        self,
    ) -> Iterable[Tuple[int, int, Optional[float], Optional[float]]]:
        """Every ``(source, target, old_factor, new_factor)`` that differs.

        A pair absent on one side carries ``None`` there; only dirty rows can
        differ, so the iteration is O(dirty rows).
        """
        for source in sorted(self.dirty):
            old = self._old_dedup_of(source)
            new = _dedup_min_links(self.new_rows.get(source, ()))
            if old == new:
                continue
            for target in sorted(old.keys() | new.keys()):
                old_factor = old.get(target)
                new_factor = new.get(target)
                if old_factor != new_factor:
                    yield source, target, old_factor, new_factor


class FlattenedUpperDiff:
    """The :class:`UpperDiff` interface over two whole-layer flatten maps.

    The reference (and the fallback when the upper layer was reassembled from
    scratch — vertex removals, ``REPRO_DELTA_FOOTPRINT=0``): both link maps
    are O(Lup) flattens, and the diff compares them key by key.
    """

    __slots__ = ("old_links", "new_links", "_old_by_source")

    def __init__(
        self,
        old_links: Dict[Tuple[int, int], float],
        new_links: Dict[Tuple[int, int], float],
    ) -> None:
        self.old_links = old_links
        self.new_links = new_links
        self._old_by_source: Optional[Dict[int, Dict[int, float]]] = None

    def old_links_of(self, source: int) -> Dict[int, float]:
        """The pre-delta deduplicated out-links of ``source`` on Lup."""
        if self._old_by_source is None:
            grouped: Dict[int, Dict[int, float]] = {}
            for (link_source, target), factor in self.old_links.items():
                grouped.setdefault(link_source, {})[target] = factor
            self._old_by_source = grouped
        return self._old_by_source.get(source, {})

    def changed_links(
        self,
    ) -> Iterable[Tuple[int, int, Optional[float], Optional[float]]]:
        """Every ``(source, target, old_factor, new_factor)`` that differs."""
        for key in sorted(self.old_links.keys() | self.new_links.keys()):
            old_factor = self.old_links.get(key)
            new_factor = self.new_links.get(key)
            if old_factor != new_factor:
                yield key[0], key[1], old_factor, new_factor


class LayeredGraph:
    """The layered representation of one graph for one algorithm."""

    def __init__(self, spec: AlgorithmSpec, graph: Graph, config: LayphConfig) -> None:
        self.spec = spec
        self.graph = graph
        self.config = config
        self.subgraphs: List[DenseSubgraph] = []
        #: real vertex -> index of the dense subgraph it belongs to
        self.subgraph_of: Dict[int, int] = {}
        self.upper_adjacency: FactorAdjacency = FactorAdjacency()
        self.upper_vertices: Set[int] = set()
        self._next_proxy_id: int = -1
        #: stable proxy ids: (subgraph index, host, side) -> proxy id, so that
        #: re-planning the same subgraph keeps the same proxies (which lets the
        #: online engine reuse shortcut tables and proxy states)
        self._proxy_registry: Dict[Tuple[int, int, str], int] = {}
        #: metrics of construction work (shortcut computation is F work)
        self.construction_metrics = ExecutionMetrics()
        #: per-source indexes of the replication artifacts, maintained by
        #: :meth:`_refresh_subgraph` so the per-delta upper maintenance never
        #: re-unions them across all subgraphs:
        #: rewired original edge -> number of subgraphs rewiring it
        self._rewired_counts: Dict[Tuple[int, int], int] = {}
        #: source -> {subgraph index -> its host/proxy links from that source}
        self._upper_links_by_source: Dict[int, Dict[int, List[Tuple[int, float]]]] = {}
        #: proxy vertex -> index of the subgraph that owns it
        self._proxy_owner: Dict[int, int] = {}
        #: upper-layer rebuilds that could keep the previous adjacency object
        #: (skeleton unchanged — its CSR compile memo stays valid) / that had
        #: to install a new one; exposed for tests and benchmark reporting
        self.upper_reuses = 0
        self.upper_rebuilds = 0
        #: deltas whose upper layer was maintained by the row-level diff path
        #: (:meth:`patch_upper`) instead of a full reassembly
        self.upper_patches = 0
        #: cached reverse view ``(adjacency object, version, incoming)`` of
        #: :meth:`upper_in_adjacency`, plus hit/rebuild counters for tests
        self._upper_in_cache: Optional[
            Tuple[FactorAdjacency, int, Dict[int, List[Tuple[int, float]]]]
        ] = None
        self.upper_in_reuses = 0
        self.upper_in_rebuilds = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        spec: AlgorithmSpec,
        graph: Graph,
        config: Optional[LayphConfig] = None,
    ) -> "LayeredGraph":
        """Build the layered graph of ``graph`` for algorithm ``spec``."""
        config = config or LayphConfig()
        if config.enable_replication and any(v < 0 for v in graph.vertices()):
            raise ValueError(
                "vertex replication reserves negative ids for proxies; "
                "the input graph must use non-negative vertex ids"
            )
        layered = cls(spec, graph, config)
        cap = config.resolved_community_cap(graph.num_vertices())
        candidates = louvain_communities(
            graph, max_community_size=cap, seed=config.seed
        )
        classifications = select_dense_subgraphs(
            graph,
            candidates,
            min_size=config.min_subgraph_size,
            apply_density_rule=config.apply_density_rule,
        )
        for classification in classifications:
            layered._add_subgraph(classification)
        layered.rebuild_upper()
        return layered

    def _add_subgraph(self, classification: BoundaryClassification) -> None:
        index = len(self.subgraphs)
        subgraph = DenseSubgraph(index=index, members=set(classification.members))
        self.subgraphs.append(subgraph)
        for vertex in subgraph.members:
            self.subgraph_of[vertex] = index
        self._refresh_subgraph(subgraph)

    # ------------------------------------------------------------------
    # (re)construction of one subgraph
    # ------------------------------------------------------------------
    def _allocate_proxy(self, subgraph_index: int, host: int, side: str) -> int:
        """Stable (negative) proxy id for ``host`` on ``side`` of one subgraph."""
        key = (subgraph_index, host, side)
        proxy = self._proxy_registry.get(key)
        if proxy is None:
            proxy = self._next_proxy_id
            self._next_proxy_id -= 1
            self._proxy_registry[key] = proxy
        return proxy

    def _refresh_subgraph(
        self,
        subgraph: DenseSubgraph,
        defer: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        """Re-derive classification, replication, local links and shortcuts
        of ``subgraph`` from the current graph.

        Shortcut tables are expensive, so they are reused whenever they are
        still valid: if the intra-subgraph links did not change, only the
        shortcut vectors of *new* boundary vertices are computed; if some
        intra-subgraph links changed, only the boundary vertices whose old
        shortcut region can reach a changed link are recomputed (the others
        provably keep their weights).  This mirrors the paper's incremental
        shortcut maintenance (Section IV-B).

        With ``defer``, full from-scratch recomputations are not run inline:
        each is recorded as a ``(subgraph index, boundary vertex)`` entry
        (the shortcut table gets a placeholder preserving the sorted-key
        order) for the caller to solve in one batch — this is how
        :meth:`rebuild_subgraphs` fans the solves out to the worker pool.
        Incremental vector updates stay inline either way; they are cheap
        O(changed-region) revisions, not solves.
        """
        spec = self.spec
        graph = self.graph
        subgraph.members = {v for v in subgraph.members if graph.has_vertex(v)}
        classification = classify_boundary(graph, subgraph.members)

        if self.config.enable_replication:
            plan = plan_replication(
                spec,
                graph,
                classification,
                self.config.replication_threshold,
                lambda host, side: self._allocate_proxy(subgraph.index, host, side),
            )
            entry, exit_, internal = reclassify_with_replication(
                graph, classification, plan
            )
        else:
            plan = ReplicationPlan()
            entry, exit_, internal = (
                set(classification.entry),
                set(classification.exit),
                set(classification.internal),
            )

        old_local = subgraph.local_adjacency
        old_shortcuts = subgraph.shortcuts
        old_boundary = subgraph.boundary
        old_proxies = subgraph.proxies
        old_rewired = subgraph.rewired_edges
        old_upper_links = subgraph.upper_links

        subgraph.entry = entry
        subgraph.exit = exit_
        subgraph.internal = internal
        subgraph.proxies = dict(plan.proxies)
        subgraph.rewired_edges = set(plan.rewired_edges)
        subgraph.upper_links = list(plan.upper_links)
        self._reindex_subgraph(subgraph, old_proxies, old_rewired, old_upper_links)

        # Intra-subgraph factor adjacency: original edges between members plus
        # the links created by proxy rewiring.
        local = FactorAdjacency()
        members = subgraph.members
        for source in members:
            for target in graph.out_neighbors(source):
                if target in members:
                    local.add(source, target, spec.edge_factor(graph, source, target))
        for source, target, factor in plan.local_links:
            local.add(source, target, factor)
        subgraph.local_adjacency = local

        boundary = subgraph.boundary
        stale_sources = self._stale_shortcut_sources(
            old_local, local, old_shortcuts, old_boundary, boundary
        )
        changed_sources = self._changed_local_sources(old_local, local)
        boundary_changed = old_boundary != boundary
        shortcuts: Dict[int, Dict[int, float]] = {}
        for vertex in sorted(boundary):
            if vertex not in stale_sources and vertex in old_shortcuts:
                shortcuts[vertex] = old_shortcuts[vertex]
                continue
            updated: Optional[Dict[int, float]] = None
            if not boundary_changed and vertex in old_shortcuts:
                # Incremental shortcut maintenance (Section IV-B): revise the
                # memoized weights with the changed links' revision messages.
                updated = update_shortcut_vector(
                    spec,
                    old_local,
                    local,
                    vertex,
                    boundary,
                    old_shortcuts[vertex],
                    changed_sources,
                    self.construction_metrics,
                    backend=self.config.backend,
                )
            if updated is None:
                if defer is not None:
                    defer.append((subgraph.index, vertex))
                    shortcuts[vertex] = {}
                    continue
                updated = compute_shortcuts_from(
                    spec,
                    local,
                    vertex,
                    boundary,
                    self.construction_metrics,
                    backend=self.config.backend,
                )
            shortcuts[vertex] = updated
        subgraph.shortcuts = shortcuts

    def _reindex_subgraph(
        self,
        subgraph: DenseSubgraph,
        old_proxies: Dict[int, int],
        old_rewired: Set[Tuple[int, int]],
        old_upper_links: List[Tuple[int, int, float]],
    ) -> None:
        """Move the per-source replication indexes from a subgraph's old
        tables to its freshly planned ones (an O(subgraph tables) diff,
        instead of the O(all subgraphs) re-unions ``patch_upper`` used to
        run on every delta)."""
        index = subgraph.index
        for proxy in old_proxies:
            if proxy not in subgraph.proxies and self._proxy_owner.get(proxy) == index:
                del self._proxy_owner[proxy]
        for proxy in subgraph.proxies:
            self._proxy_owner[proxy] = index
        for edge in old_rewired:
            count = self._rewired_counts.get(edge, 0) - 1
            if count <= 0:
                self._rewired_counts.pop(edge, None)
            else:
                self._rewired_counts[edge] = count
        for edge in subgraph.rewired_edges:
            self._rewired_counts[edge] = self._rewired_counts.get(edge, 0) + 1
        for source, _target, _factor in old_upper_links:
            bucket = self._upper_links_by_source.get(source)
            if bucket is not None:
                bucket.pop(index, None)
                if not bucket:
                    del self._upper_links_by_source[source]
        for source, target, factor in subgraph.upper_links:
            self._upper_links_by_source.setdefault(source, {}).setdefault(
                index, []
            ).append((target, factor))

    def proxy_owner_of(self, vertex: int) -> Optional[int]:
        """Index of the subgraph owning proxy ``vertex`` (``None`` otherwise)."""
        return self._proxy_owner.get(vertex)

    @staticmethod
    def _changed_local_sources(
        old_local: FactorAdjacency, new_local: FactorAdjacency
    ) -> Set[int]:
        """Vertices whose intra-subgraph out-links changed between rebuilds."""
        changed: Set[int] = set()
        old_vertices = set(old_local.vertices_with_out_edges())
        new_vertices = set(new_local.vertices_with_out_edges())
        for vertex in old_vertices | new_vertices:
            if sorted(old_local(vertex)) != sorted(new_local(vertex)):
                changed.add(vertex)
        return changed

    def _stale_shortcut_sources(
        self,
        old_local: FactorAdjacency,
        new_local: FactorAdjacency,
        old_shortcuts: Dict[int, Dict[int, float]],
        old_boundary: Set[int],
        new_boundary: Set[int],
    ) -> Set[int]:
        """Boundary vertices whose shortcut vectors must be recomputed.

        A boundary vertex is stale when some intra-subgraph link changed at a
        vertex its old shortcut region could reach (or at itself), or when the
        boundary set changed in a way that alters which vertices absorb
        messages along its internal paths.
        """
        if not old_shortcuts:
            return set(new_boundary)
        changed_sources = self._changed_local_sources(old_local, new_local)
        if not changed_sources and old_boundary == new_boundary:
            return set()
        if old_boundary != new_boundary:
            # Vertices that moved between boundary and internal change the
            # absorption pattern of every path that crosses them.
            changed_sources = set(changed_sources) | (old_boundary ^ new_boundary)
        stale: Set[int] = set()
        for vertex in new_boundary:
            old_vector = old_shortcuts.get(vertex)
            if old_vector is None:
                stale.add(vertex)
                continue
            reach = set(old_vector) | {vertex}
            if reach & changed_sources:
                stale.add(vertex)
        return stale

    def rebuild_subgraph(self, index: int, metrics: Optional[ExecutionMetrics] = None) -> None:
        """Rebuild one dense subgraph against the current graph.

        Used by the online engine for the subgraphs affected by ΔG; the
        shortcut recomputation work is charged to ``metrics`` when given.
        """
        subgraph = self.subgraphs[index]
        previous_total = self.construction_metrics.edge_activations
        # Drop members that disappeared from the graph.
        for vertex in list(subgraph.members):
            if not self.graph.has_vertex(vertex):
                subgraph.members.discard(vertex)
                self.subgraph_of.pop(vertex, None)
        self._refresh_subgraph(subgraph)
        if metrics is not None:
            metrics.edge_activations += (
                self.construction_metrics.edge_activations - previous_total
            )

    def rebuild_subgraphs(
        self,
        indices: Iterable[int],
        metrics: Optional[ExecutionMetrics] = None,
        solver=None,
    ) -> None:
        """Rebuild several dense subgraphs, optionally batching the solves.

        Without ``solver`` this is exactly ``rebuild_subgraph`` per index.
        With one, the from-scratch shortcut recomputations of all indices
        are deferred and handed to ``solver(deferred)`` in one batch — the
        engine passes :func:`repro.layph.parallel_phases.parallel_shortcuts`
        bound to the worker pool.  The solver returns the vectors in
        ``deferred`` order (having replayed its propagation rounds into
        ``construction_metrics``), or ``None``, in which case each deferred
        entry runs the serial solve right here.  Either way the per-delta
        F-work charged to ``metrics`` equals the serial loop's: it is the
        batch's total construction-metrics activation delta, and both the
        pooled kernel and the serial fallback record the identical rounds.
        """
        indices = list(indices)
        if solver is None:
            for index in indices:
                self.rebuild_subgraph(index, metrics)
            return
        previous_total = self.construction_metrics.edge_activations
        deferred: List[Tuple[int, int]] = []
        for index in indices:
            subgraph = self.subgraphs[index]
            for vertex in list(subgraph.members):
                if not self.graph.has_vertex(vertex):
                    subgraph.members.discard(vertex)
                    self.subgraph_of.pop(vertex, None)
            self._refresh_subgraph(subgraph, defer=deferred)
        if deferred:
            solved = solver(deferred)
            if solved is None:
                for index, vertex in deferred:
                    subgraph = self.subgraphs[index]
                    subgraph.shortcuts[vertex] = compute_shortcuts_from(
                        self.spec,
                        subgraph.local_adjacency,
                        vertex,
                        subgraph.boundary,
                        self.construction_metrics,
                        backend=self.config.backend,
                    )
            else:
                for (index, vertex), vector in zip(deferred, solved):
                    self.subgraphs[index].shortcuts[vertex] = vector
        if metrics is not None:
            metrics.edge_activations += (
                self.construction_metrics.edge_activations - previous_total
            )

    # ------------------------------------------------------------------
    # upper layer
    # ------------------------------------------------------------------
    def outliers(self) -> Set[int]:
        """Vertices of the graph that belong to no dense subgraph."""
        return {
            vertex
            for vertex in self.graph.vertices()
            if vertex not in self.subgraph_of
        }

    def _assemble_upper(self) -> Tuple[FactorAdjacency, Set[int]]:
        """Assemble a fresh upper layer from the current subgraph tables.

        Pure function of the current graph and subgraph state: returns the
        ``(adjacency, upper_vertices)`` pair without installing anything, so
        :meth:`rebuild_upper` and the diff-path regression tests share one
        assembly.
        """
        spec = self.spec
        graph = self.graph
        upper = FactorAdjacency()
        upper_vertices: Set[int] = set()

        rewired: Set[Tuple[int, int]] = set()
        for subgraph in self.subgraphs:
            rewired.update(subgraph.rewired_edges)
            upper_vertices.update(subgraph.boundary)

        upper_vertices.update(self.outliers())

        # Original edges that are not inside any dense subgraph (and were not
        # rewired through a proxy) stay on the upper layer with their factors.
        for source, target, _weight in graph.edges():
            same = (
                source in self.subgraph_of
                and target in self.subgraph_of
                and self.subgraph_of[source] == self.subgraph_of[target]
            )
            if same:
                continue
            if (source, target) in rewired:
                continue
            upper.add(source, target, spec.edge_factor(graph, source, target))

        # Boundary-to-boundary shortcuts and host/proxy links of every
        # dense subgraph.
        for subgraph in self.subgraphs:
            for source, target, factor in subgraph.boundary_shortcut_links():
                upper.add(source, target, factor)
            for source, target, factor in subgraph.upper_links:
                upper.add(source, target, factor)
        return upper, upper_vertices

    def rebuild_upper(self) -> None:
        """Re-assemble the upper layer from the current subgraph tables.

        When the freshly assembled skeleton carries exactly the same links as
        the previous one (a delta that rebuilt subgraphs without changing any
        boundary shortcut, upper link or cross edge), the *previous*
        ``FactorAdjacency`` object is kept: its mutation counter is what the
        :func:`repro.graph.csr_cache.master_factor_csr` memo keys the
        compiled upper-layer CSR on, so keeping the object alive makes the
        next upper-layer ``propagate`` reuse the compiled skeleton across
        deltas instead of recompiling an identical snapshot.

        This is the full-reassembly path — O(V + E) per delta.  The online
        engine prefers :meth:`patch_upper` (row-level maintenance driven by
        the delta footprint) and falls back here when vertices left the
        graph (subgraph membership changed) or the footprint is disabled.
        """
        upper, upper_vertices = self._assemble_upper()
        if self.upper_adjacency.same_links(upper):
            self.upper_reuses += 1
        else:
            self.upper_adjacency = upper
            self.upper_rebuilds += 1
        self.upper_vertices = upper_vertices

    # ------------------------------------------------------------------
    # incremental (diff-based) upper-layer maintenance
    # ------------------------------------------------------------------
    def subgraph_upper_sources(self, indices: Iterable[int]) -> Set[int]:
        """Every source whose upper row the given subgraphs contribute to.

        Snapshot this for the affected subgraphs *before* rebuilding them and
        again after: the union bounds the rows a rebuild can have changed —
        shortcut links originate at boundary vertices (proxies included),
        host/proxy links at their recorded sources, and a rewired original
        edge flips its source's cross-edge row when the rewiring changes.
        """
        sources: Set[int] = set()
        for index in indices:
            subgraph = self.subgraphs[index]
            sources |= subgraph.boundary
            sources.update(source for source, _t, _f in subgraph.upper_links)
            sources.update(source for source, _t in subgraph.rewired_edges)
        return sources

    def subgraph_boundaries(self, indices: Iterable[int]) -> Set[int]:
        """Union of the boundary sets (proxies included) of the subgraphs."""
        boundaries: Set[int] = set()
        for index in indices:
            boundaries |= self.subgraphs[index].boundary
        return boundaries

    def patch_upper(
        self,
        dirty_sources: Set[int],
        removed_upper: Set[int],
        added_upper: Set[int],
        want_diff: bool = False,
    ) -> Optional["UpperDiff"]:
        """Maintain the upper layer in place from a delta's row footprint.

        ``dirty_sources`` must cover every vertex whose upper row can differ
        from the previous delta's: the delta's touched sources (their
        out-adjacency — and with it every cross-edge factor — changed) plus
        :meth:`subgraph_upper_sources` of the rebuilt subgraphs, before and
        after the rebuild.  Each dirty row is re-derived exactly as
        :meth:`_assemble_upper` would build it (cross edges in out-adjacency
        order, then per subgraph — via the per-source replication indexes
        maintained at subgraph rebuild, never a re-union over all subgraphs —
        the boundary shortcuts and host/proxy links), so the patched
        adjacency is identical — content and per-row link order — to a full
        reassembly.  Rows outside ``dirty_sources`` cannot change: their
        cross edges, factors and rewiring status are functions of unchanged
        out-adjacencies and untouched subgraph tables.

        Callers must fall back to :meth:`rebuild_upper` when subgraph
        *membership* changed (vertices removed from the graph): a membership
        shift flips the same-subgraph test of edges this footprint cannot
        see.  ``removed_upper``/``added_upper`` carry the membership diff of
        the upper vertex set (old vs new boundaries of the rebuilt subgraphs,
        plus the delta's brand-new vertices, which are always outliers).

        With ``want_diff`` the old rows of the dirty sources are captured
        before the patch and returned as an :class:`UpperDiff` — the
        O(dirty-rows) link diff the selective upload consumes instead of
        flattening the whole upper layer twice per delta.
        """
        spec = self.spec
        graph = self.graph
        subgraph_of = self.subgraph_of
        rewired = self._rewired_counts

        rows: Dict[int, List[Tuple[int, float]]] = {}
        for vertex in dirty_sources:
            row: List[Tuple[int, float]] = []
            if graph.has_vertex(vertex):
                own = subgraph_of.get(vertex)
                for target in graph.out_neighbors(vertex):
                    if own is not None and subgraph_of.get(target) == own:
                        continue
                    if (vertex, target) in rewired:
                        continue
                    row.append((target, spec.edge_factor(graph, vertex, target)))
            rows[vertex] = row
        # A vertex's shortcut links live only in its owning subgraph (members
        # via ``subgraph_of``, proxies via the maintained owner index); its
        # host/proxy links come from the per-source link index.  Contributions
        # replay the assembly order: subgraphs ascending, a subgraph's
        # shortcuts before its host/proxy links.
        for vertex in dirty_sources:
            own = subgraph_of.get(vertex)
            if own is None:
                own = self._proxy_owner.get(vertex)
            buckets = self._upper_links_by_source.get(vertex)
            if own is None and buckets is None:
                continue
            row = rows[vertex]
            indices = set(buckets) if buckets else set()
            if own is not None:
                indices.add(own)
            for index in sorted(indices):
                if index == own:
                    subgraph = self.subgraphs[index]
                    targets = subgraph.shortcuts.get(vertex)
                    if targets:
                        boundary = subgraph.boundary
                        row.extend(
                            (target, factor)
                            for target, factor in targets.items()
                            if target in boundary
                        )
                if buckets is not None and index in buckets:
                    row.extend(buckets[index])

        diff: Optional[UpperDiff] = None
        if want_diff:
            # ``replace_rows`` installs new list objects, so holding the old
            # per-row references is a zero-copy snapshot of the old rows.
            adjacency = self.upper_adjacency
            diff = UpperDiff(
                adjacency,
                set(rows),
                {vertex: adjacency(vertex) for vertex in rows},
                rows,
            )
        if self.upper_adjacency.replace_rows(rows):
            self.upper_patches += 1
        else:
            self.upper_reuses += 1
        if removed_upper or added_upper:
            self.upper_vertices = (self.upper_vertices - removed_upper) | added_upper
        return diff

    def upper_in_adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """Reverse view of the upper layer: target -> [(source, factor)].

        Cached across deltas, keyed by the identity and mutation counter of
        ``upper_adjacency`` — rebuilds (new adjacency object) and in-place
        row patches (version bump) both invalidate it, so the selective
        upload path no longer pays an O(Lup) rebuild per delta.  Callers
        must treat the result as read-only.  ``REPRO_CSR_CACHE=0`` disables
        the memo like the other compiled-structure caches.
        """
        from repro.graph.csr_cache import csr_cache_enabled

        adjacency = self.upper_adjacency
        cached = self._upper_in_cache
        if (
            cached is not None
            and csr_cache_enabled()
            and cached[0] is adjacency
            and cached[1] == adjacency.version
        ):
            self.upper_in_reuses += 1
            return cached[2]
        incoming: Dict[int, List[Tuple[int, float]]] = {}
        for source in adjacency.vertices_with_out_edges():
            for target, factor in adjacency(source):
                incoming.setdefault(target, []).append((source, factor))
        self._upper_in_cache = (adjacency, adjacency.version, incoming)
        self.upper_in_rebuilds += 1
        return incoming

    # ------------------------------------------------------------------
    # bookkeeping for deltas
    # ------------------------------------------------------------------
    def remove_vertices(self, vertices: Iterable[int]) -> Set[int]:
        """Drop deleted vertices from the membership maps.

        Returns the indices of the subgraphs that lost members (the caller is
        expected to rebuild them).
        """
        affected: Set[int] = set()
        for vertex in vertices:
            index = self.subgraph_of.pop(vertex, None)
            if index is not None:
                self.subgraphs[index].members.discard(vertex)
                affected.add(index)
        return affected

    def affected_subgraphs(self, touched_vertices: Iterable[int]) -> Set[int]:
        """Indices of the dense subgraphs containing any touched vertex."""
        return {
            self.subgraph_of[vertex]
            for vertex in touched_vertices
            if vertex in self.subgraph_of
        }

    def proxy_vertices(self) -> Set[int]:
        """Every proxy vertex currently present in the layered graph."""
        proxies: Set[int] = set()
        for subgraph in self.subgraphs:
            proxies.update(subgraph.proxies)
        return proxies

    # ------------------------------------------------------------------
    # durable snapshots (repro.storage)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-able state of the layered graph (everything but spec/graph/config).

        Orders matter and are preserved verbatim wherever a consumer folds
        floats over them: each subgraph's ``upper_links`` list, its shortcut
        tables' dict orders, the local and upper adjacencies' row orders (and
        their mutation counters, which key the compiled-CSR memos), and the
        nested ``_upper_links_by_source`` buckets whose inner lists
        :meth:`patch_upper` extends rows with.  Pure sets (members, boundary
        splits, rewired edges, upper vertices) are stored sorted — their
        consumers are set operations, keyed lookups, or sorted iterations.
        The lazy reverse-view cache is dropped; it rebuilds on first use.
        """
        return {
            "subgraphs": [
                {
                    "index": subgraph.index,
                    "members": sorted(subgraph.members),
                    "entry": sorted(subgraph.entry),
                    "exit": sorted(subgraph.exit),
                    "internal": sorted(subgraph.internal),
                    "proxies": [
                        [proxy, host] for proxy, host in subgraph.proxies.items()
                    ],
                    "rewired_edges": sorted(
                        [source, target]
                        for source, target in subgraph.rewired_edges
                    ),
                    "upper_links": [list(link) for link in subgraph.upper_links],
                    "local_adjacency": _adjacency_state(subgraph.local_adjacency),
                    "shortcuts": [
                        [source, [[target, factor] for target, factor in row.items()]]
                        for source, row in subgraph.shortcuts.items()
                    ],
                }
                for subgraph in self.subgraphs
            ],
            "subgraph_of": [
                [vertex, index] for vertex, index in self.subgraph_of.items()
            ],
            "upper_adjacency": _adjacency_state(self.upper_adjacency),
            "upper_vertices": sorted(self.upper_vertices),
            "next_proxy_id": self._next_proxy_id,
            "proxy_registry": [
                [sub, host, side, proxy]
                for (sub, host, side), proxy in self._proxy_registry.items()
            ],
            "construction_metrics": {
                "edge_activations": self.construction_metrics.edge_activations,
                "vertex_updates": self.construction_metrics.vertex_updates,
                "iterations": self.construction_metrics.iterations,
                "activations_per_round": list(
                    self.construction_metrics.activations_per_round
                ),
                "active_vertices_per_round": list(
                    self.construction_metrics.active_vertices_per_round
                ),
            },
            "rewired_counts": [
                [source, target, count]
                for (source, target), count in self._rewired_counts.items()
            ],
            "upper_links_by_source": [
                [
                    source,
                    [
                        [index, [[target, factor] for target, factor in links]]
                        for index, links in buckets.items()
                    ],
                ]
                for source, buckets in self._upper_links_by_source.items()
            ],
            "proxy_owner": [
                [proxy, index] for proxy, index in self._proxy_owner.items()
            ],
            "counters": {
                "upper_reuses": self.upper_reuses,
                "upper_rebuilds": self.upper_rebuilds,
                "upper_patches": self.upper_patches,
                "upper_in_reuses": self.upper_in_reuses,
                "upper_in_rebuilds": self.upper_in_rebuilds,
            },
        }

    @classmethod
    def from_state(
        cls,
        spec: AlgorithmSpec,
        graph: Graph,
        config: LayphConfig,
        payload: dict,
    ) -> "LayeredGraph":
        """Rebuild a layered graph from :meth:`to_state` output.

        ``graph`` must already be the graph the state was captured against
        (same edges *and* adjacency orders — the durable store's baseline
        restore guarantees that).
        """
        layered = cls(spec, graph, config)
        for entry in payload["subgraphs"]:
            subgraph = DenseSubgraph(
                index=int(entry["index"]),
                members={int(vertex) for vertex in entry["members"]},
                entry={int(vertex) for vertex in entry["entry"]},
                exit={int(vertex) for vertex in entry["exit"]},
                internal={int(vertex) for vertex in entry["internal"]},
                proxies={
                    int(proxy): int(host) for proxy, host in entry["proxies"]
                },
                rewired_edges={
                    (int(source), int(target))
                    for source, target in entry["rewired_edges"]
                },
                upper_links=[
                    (int(source), int(target), float(factor))
                    for source, target, factor in entry["upper_links"]
                ],
                local_adjacency=_adjacency_from_state(entry["local_adjacency"]),
                shortcuts={
                    int(source): {
                        int(target): float(factor) for target, factor in row
                    }
                    for source, row in entry["shortcuts"]
                },
            )
            layered.subgraphs.append(subgraph)
        layered.subgraph_of = {
            int(vertex): int(index) for vertex, index in payload["subgraph_of"]
        }
        layered.upper_adjacency = _adjacency_from_state(payload["upper_adjacency"])
        layered.upper_vertices = {int(vertex) for vertex in payload["upper_vertices"]}
        layered._next_proxy_id = int(payload["next_proxy_id"])
        layered._proxy_registry = {
            (int(sub), int(host), str(side)): int(proxy)
            for sub, host, side, proxy in payload["proxy_registry"]
        }
        metrics_state = payload["construction_metrics"]
        layered.construction_metrics = ExecutionMetrics(
            edge_activations=int(metrics_state["edge_activations"]),
            vertex_updates=int(metrics_state["vertex_updates"]),
            iterations=int(metrics_state["iterations"]),
            activations_per_round=[
                int(count) for count in metrics_state["activations_per_round"]
            ],
            active_vertices_per_round=[
                int(count) for count in metrics_state["active_vertices_per_round"]
            ],
        )
        layered._rewired_counts = {
            (int(source), int(target)): int(count)
            for source, target, count in payload["rewired_counts"]
        }
        layered._upper_links_by_source = {
            int(source): {
                int(index): [
                    (int(target), float(factor)) for target, factor in links
                ]
                for index, links in buckets
            }
            for source, buckets in payload["upper_links_by_source"]
        }
        layered._proxy_owner = {
            int(proxy): int(index) for proxy, index in payload["proxy_owner"]
        }
        counters = payload["counters"]
        layered.upper_reuses = int(counters["upper_reuses"])
        layered.upper_rebuilds = int(counters["upper_rebuilds"])
        layered.upper_patches = int(counters["upper_patches"])
        layered.upper_in_reuses = int(counters["upper_in_reuses"])
        layered.upper_in_rebuilds = int(counters["upper_in_rebuilds"])
        return layered

    # ------------------------------------------------------------------
    # size accounting (Figures 8a and 11a)
    # ------------------------------------------------------------------
    def upper_size(self) -> Tuple[int, int]:
        """``(vertices, links)`` of the upper layer."""
        return len(self.upper_vertices | set(self.proxy_vertices())), len(
            self.upper_adjacency
        )

    def shortcut_count(self) -> int:
        """Total number of shortcut entries across all dense subgraphs."""
        return sum(subgraph.shortcut_count() for subgraph in self.subgraphs)

    def lower_size(self) -> Tuple[int, int]:
        """``(vertices, links)`` of the lower layer."""
        vertices = sum(len(subgraph.internal) for subgraph in self.subgraphs)
        links = sum(len(subgraph.local_adjacency) for subgraph in self.subgraphs)
        return vertices, links

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        upper_vertices, upper_links = self.upper_size()
        return (
            f"LayeredGraph(subgraphs={len(self.subgraphs)}, "
            f"Lup=({upper_vertices} vertices, {upper_links} links), "
            f"shortcuts={self.shortcut_count()})"
        )


def build_layered_graph(
    spec: AlgorithmSpec, graph: Graph, config: Optional[LayphConfig] = None
) -> LayeredGraph:
    """Convenience wrapper around :meth:`LayeredGraph.build`."""
    return LayeredGraph.build(spec, graph, config)
