"""Vertex replication (Section IV-A1, "Solution: Vertex Replication").

High-degree vertices outside a dense subgraph often connect to many of its
entry (or exit) vertices, which bloats the skeleton: every such connection
keeps a boundary vertex on the upper layer.  Layph replicates the outside
vertex as a *proxy* inside the subgraph: the original cross edges are rewired
through the proxy, the former boundary vertices can sink back into the lower
layer, and the upper layer shrinks.

Correctness is preserved because the layered graph stores explicit
propagation *factors* on its links: the host-to-proxy (or proxy-to-host) link
carries the identity of the algorithm's ``combine`` operator, and the rewired
edges keep their original factors, so every path composition is unchanged.
Proxy vertices use negative identifiers so they can never collide with real
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph
from repro.layph.dense import BoundaryClassification

#: allocator of proxy ids: (host, side) -> proxy id; "side" is "entry"/"exit"
ProxyAllocator = Callable[[int, str], int]


@dataclass
class ReplicationPlan:
    """The outcome of replicating hosts around one dense subgraph."""

    #: proxy id -> host id
    proxies: Dict[int, int] = field(default_factory=dict)
    #: proxies acting as entry vertices (host outside -> proxy inside)
    entry_proxies: Set[int] = field(default_factory=set)
    #: proxies acting as exit vertices (proxy inside -> host outside)
    exit_proxies: Set[int] = field(default_factory=set)
    #: original cross edges (source, target) replaced by the proxy wiring
    rewired_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: intra-subgraph links added by the rewiring: (source, target, factor)
    local_links: List[Tuple[int, int, float]] = field(default_factory=list)
    #: upper-layer links added by the rewiring: (source, target, factor)
    upper_links: List[Tuple[int, int, float]] = field(default_factory=list)

    def is_empty(self) -> bool:
        """Whether no host was replicated."""
        return not self.proxies


def plan_replication(
    spec: AlgorithmSpec,
    graph: Graph,
    classification: BoundaryClassification,
    threshold: int,
    allocate: ProxyAllocator,
) -> ReplicationPlan:
    """Decide which outside hosts to replicate for one dense subgraph.

    Args:
        spec: the algorithm (its ``combine`` identity labels host/proxy links
            and its ``edge_factor`` labels the rewired edges).
        graph: the full graph.
        classification: the subgraph's entry/exit/internal split *before*
            replication.
        threshold: minimum number of boundary vertices sharing one outside
            host for the host to be replicated.
        allocate: allocator of (negative) proxy ids, keyed by host and side so
            that re-planning the same subgraph reuses the same proxy ids.

    Returns:
        The replication plan.
    """
    members = classification.members
    plan = ReplicationPlan()
    identity = spec.combine_identity()

    # Entry side: hosts outside the subgraph with many edges into it.
    # Iterate the boundary sets in sorted order: the per-host target lists
    # below fix the insertion order of ``local_links`` (and through it the
    # subgraph adjacency's row order, i.e. the fold order of the propagation
    # float sums), and set iteration order is a function of insertion history
    # — which a store-restored run does not share with the live one.
    inbound_by_host: Dict[int, List[int]] = {}
    for entry_vertex in sorted(classification.entry):
        for host in graph.in_neighbors(entry_vertex):
            if host not in members:
                inbound_by_host.setdefault(host, []).append(entry_vertex)
    for host in sorted(inbound_by_host):
        targets = inbound_by_host[host]
        if len(targets) < threshold:
            continue
        proxy = allocate(host, "entry")
        plan.proxies[proxy] = host
        plan.entry_proxies.add(proxy)
        plan.upper_links.append((host, proxy, identity))
        for target in targets:
            plan.rewired_edges.add((host, target))
            plan.local_links.append(
                (proxy, target, spec.edge_factor(graph, host, target))
            )

    # Exit side: hosts outside the subgraph fed by many of its exit vertices.
    outbound_by_host: Dict[int, List[int]] = {}
    for exit_vertex in sorted(classification.exit):
        for host in graph.out_neighbors(exit_vertex):
            if host not in members:
                outbound_by_host.setdefault(host, []).append(exit_vertex)
    for host in sorted(outbound_by_host):
        sources = outbound_by_host[host]
        if len(sources) < threshold:
            continue
        proxy = allocate(host, "exit")
        plan.proxies[proxy] = host
        plan.exit_proxies.add(proxy)
        plan.upper_links.append((proxy, host, identity))
        for source in sources:
            plan.rewired_edges.add((source, host))
            plan.local_links.append(
                (source, proxy, spec.edge_factor(graph, source, host))
            )

    return plan


def reclassify_with_replication(
    graph: Graph,
    classification: BoundaryClassification,
    plan: ReplicationPlan,
) -> Tuple[Set[int], Set[int], Set[int]]:
    """Recompute entry/exit/internal sets after rewiring.

    A former entry (exit) vertex whose every external in-edge (out-edge) was
    rewired through a proxy becomes internal and sinks to the lower layer —
    that is the whole point of replication.

    Returns ``(entry, exit, internal)`` where entry/exit include the proxies.
    """
    members = classification.members
    entry: Set[int] = set(plan.entry_proxies)
    exit_: Set[int] = set(plan.exit_proxies)
    for vertex in members:
        for in_neighbor in graph.in_neighbors(vertex):
            if in_neighbor not in members and (in_neighbor, vertex) not in plan.rewired_edges:
                entry.add(vertex)
                break
        for out_neighbor in graph.out_neighbors(vertex):
            if out_neighbor not in members and (vertex, out_neighbor) not in plan.rewired_edges:
                exit_.add(vertex)
                break
    internal = set(members) - entry - exit_
    return entry, exit_, internal
