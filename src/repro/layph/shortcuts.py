"""Automated shortcut deduction (Section IV-A2, Definition 3).

A shortcut from a boundary vertex ``b`` of a dense subgraph to another vertex
``v`` of the same subgraph carries the aggregation of the path compositions of
edge factors along every path ``b -> ... -> v`` whose *intermediate* vertices
are all internal.  It is computed exactly as the paper prescribes: inject the
algorithm's unit message (the identity of ``combine``) at ``b`` and run the
ordinary ``F``/``G`` iteration inside the subgraph until convergence
(Equation (6)); the aggregated value received by ``v`` is the shortcut weight.

Restricting the propagation so that other boundary vertices absorb (rather
than re-propagate) messages makes the set of shortcuts an exact folding of
the subgraph: on the upper layer, a message travelling between two boundary
vertices of the same subgraph is counted once for every distinct sequence of
boundary vertices it visits, which is what Theorems 1 and 2 need for both the
selective and the accumulative algorithm families.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import FactorAdjacency, SilencedAdjacency, propagate


class _NeutralSpec:
    """Thin wrapper: same algorithm, neutral initial values.

    States play the role of "aggregated received messages", so every vertex
    starts from the aggregation identity and no vertex carries a root message
    (Equation (6)).
    """

    def __init__(self, spec: AlgorithmSpec) -> None:
        self._spec = spec
        self._identity = spec.aggregate_identity()

    def __getattr__(self, item):
        return getattr(self._spec, item)

    def initial_state(self, vertex: int) -> float:
        return self._identity

    def initial_message(self, vertex: int) -> float:
        return self._identity


def compute_shortcuts_from(
    spec: AlgorithmSpec,
    local_adjacency: FactorAdjacency,
    source: int,
    boundary: Set[int],
    metrics: Optional[ExecutionMetrics] = None,
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[int, float]:
    """Shortcut weights from one boundary vertex to every reachable vertex.

    Args:
        spec: the algorithm whose ``F``/``G`` define the shortcut semantics.
        local_adjacency: the subgraph's intra-subgraph factor adjacency.
        source: the boundary vertex the shortcuts originate from.
        boundary: all boundary vertices of the subgraph; they accumulate
            messages but do not re-propagate them (internal-only paths).
        metrics: optional activation accounting (shortcut construction and
            maintenance is real work the paper charges to Layph).
        max_rounds: optional safety bound for the local iteration.
        backend: propagation backend (see :mod:`repro.engine.backends`).

    Returns:
        Mapping ``vertex -> shortcut weight``.  The source itself is omitted
        unless the subgraph feeds mass back to it through internal cycles
        (only possible for accumulative algorithms), in which case the entry
        carries only that cyclic surplus, never the injected unit.
    """
    if metrics is None:
        metrics = ExecutionMetrics()
    unit = spec.combine_identity()
    identity = spec.aggregate_identity()

    # Boundary vertices must not re-propagate (paths fold over internal
    # intermediates only); the source scatters exactly once, for the injected
    # unit message — mass returning to it through internal cycles is recorded
    # in its own shortcut entry but not re-emitted, otherwise the cycle would
    # be double counted when the upper layer applies the self-shortcut.  The
    # one-shot emission is exactly the first superstep (the source is the
    # only pending vertex), run as a single round with the source un-silenced;
    # every following superstep silences it like any other boundary vertex.
    # Expressing the silencing structurally — instead of through a stateful
    # closure — is what lets the vectorized backend compile both phases.
    states: Dict[int, float] = {}
    pending: Dict[int, float] = {source: unit}
    if max_rounds is not None and max_rounds <= 0:
        return {}
    neutral = _NeutralSpec(spec)
    if spec.is_significant(unit):
        propagate(
            neutral,
            SilencedAdjacency(local_adjacency, boundary - {source}),
            states,
            pending,
            metrics,
            max_rounds=1,
            backend=backend,
        )
        if max_rounds is not None:
            max_rounds -= 1

    propagate(
        neutral,
        SilencedAdjacency(local_adjacency, boundary | {source}),
        states,
        pending,
        metrics,
        max_rounds=max_rounds,
        backend=backend,
    )

    shortcuts: Dict[int, float] = {}
    for vertex, value in states.items():
        if vertex == source:
            # Remove the injected unit: the shortcut b -> b must only carry
            # mass returned through internal cycles, not the empty path.
            if spec.is_selective():
                continue
            surplus = value - unit
            if spec.is_significant(surplus):
                shortcuts[vertex] = surplus
            continue
        if spec.is_selective():
            if value != identity:
                shortcuts[vertex] = value
        else:
            if spec.is_significant(value):
                shortcuts[vertex] = value
    return shortcuts


def _fold_propagate(
    spec: AlgorithmSpec,
    local_adjacency: FactorAdjacency,
    source: int,
    boundary: Set[int],
    vector: Dict[int, float],
    pending: Dict[int, float],
    metrics: ExecutionMetrics,
    backend: Optional[str] = None,
) -> Dict[int, float]:
    """Propagate pending messages over a subgraph with boundary absorption.

    Shared by the from-scratch and the incremental shortcut calculations:
    messages spread along intra-subgraph links, boundary vertices (and the
    source) accumulate without re-emitting.
    """
    propagate(
        _NeutralSpec(spec),
        SilencedAdjacency(local_adjacency, boundary | {source}),
        vector,
        pending,
        metrics,
        backend=backend,
    )
    return vector


def update_shortcut_vector(
    spec: AlgorithmSpec,
    old_local: FactorAdjacency,
    new_local: FactorAdjacency,
    source: int,
    boundary: Set[int],
    old_vector: Dict[int, float],
    changed_sources: Set[int],
    metrics: Optional[ExecutionMetrics] = None,
    backend: Optional[str] = None,
) -> Optional[Dict[int, float]]:
    """Incrementally update one boundary vertex's shortcut vector.

    Mirrors the paper's incremental shortcut maintenance (Section IV-B): the
    weights memoized in ``old_vector`` are revised with the messages induced
    by the changed intra-subgraph links instead of being recomputed from
    scratch.

    Returns the updated vector, or ``None`` when an exact cheap update is not
    possible (a selective algorithm losing a supporting link needs the full
    trim machinery; the caller then falls back to recomputation).
    """
    if metrics is None:
        metrics = ExecutionMetrics()
    identity = spec.aggregate_identity()
    unit = spec.combine_identity()

    def emitted_mass(vertex: int) -> float:
        # Mass available at a vertex for onward propagation: the injected unit
        # at the source, the folded mass at an internal vertex, nothing usable
        # at other boundary vertices (they absorb).
        if vertex == source:
            return unit
        if vertex in boundary:
            return identity
        return old_vector.get(vertex, identity)

    pending: Dict[int, float] = {}
    for vertex in changed_sources:
        available = emitted_mass(vertex)
        if available == identity and vertex != source:
            continue
        old_links = dict(old_local(vertex))
        new_links = dict(new_local(vertex))
        for target in set(old_links) | set(new_links):
            old_factor = old_links.get(target)
            new_factor = new_links.get(target)
            if old_factor == new_factor:
                continue
            metrics.edge_activations += 1
            if spec.is_selective():
                if old_factor is not None and (
                    new_factor is None or new_factor > old_factor
                ):
                    # A path may have been lost; only the trim machinery can
                    # tell, so report "cannot update cheaply".
                    supported = old_vector.get(target)
                    offered = spec.combine(available, old_factor)
                    if supported is not None and offered <= supported + 1e-12:
                        return None
                if new_factor is not None:
                    offer = spec.combine(available, new_factor)
                    if spec.is_significant(offer):
                        pending[target] = spec.aggregate(
                            pending.get(target, identity), offer
                        )
            else:
                old_contribution = (
                    spec.combine(available, old_factor) if old_factor is not None else identity
                )
                new_contribution = (
                    spec.combine(available, new_factor) if new_factor is not None else identity
                )
                difference = spec.aggregate(
                    new_contribution, spec.negate(old_contribution)
                )
                if spec.is_significant(difference):
                    pending[target] = spec.aggregate(
                        pending.get(target, identity), difference
                    )

    vector = dict(old_vector)
    if not pending:
        return vector
    _fold_propagate(spec, new_local, source, boundary, vector, pending, metrics, backend=backend)
    if spec.is_selective():
        vector = {v: value for v, value in vector.items() if value != identity}
    else:
        vector = {v: value for v, value in vector.items() if spec.is_significant(value)}
    if spec.is_selective():
        vector.pop(source, None)
    return vector


def compute_all_shortcuts(
    spec: AlgorithmSpec,
    local_adjacency: FactorAdjacency,
    boundary: Set[int],
    metrics: Optional[ExecutionMetrics] = None,
    backend: Optional[str] = None,
) -> Dict[int, Dict[int, float]]:
    """Shortcuts from every boundary vertex of a subgraph.

    Returns ``{boundary_vertex: {target: weight}}``.
    """
    if metrics is None:
        metrics = ExecutionMetrics()
    return {
        vertex: compute_shortcuts_from(
            spec, local_adjacency, vertex, boundary, metrics, backend=backend
        )
        for vertex in sorted(boundary)
    }
