"""The Layph incremental engine (Sections III and V).

Online processing of a batch update ΔG runs the paper's four phases:

1. **Layered graph update** — only the dense subgraphs touched by ΔG are
   rebuilt (boundary re-classification, vertex replication, shortcut
   recomputation); the upper layer is re-assembled from the per-subgraph
   tables.
2. **Revision messages upload** — revision messages are deduced from the
   memoized states (selective algorithms: dependency invalidation on the
   upper layer; accumulative algorithms: cancellation/compensation messages à
   la Ingress), and the messages that originate inside affected subgraphs are
   propagated locally until they reach the subgraph boundary.
3. **Iterative computation on the upper layer** — the global iteration runs
   on the small skeleton only.
4. **Revision messages assignment** — boundary results are pushed down to the
   internal vertices of the subgraphs whose inputs changed, through the
   entry-to-internal shortcuts, without any further iteration inside
   untouched subgraphs.

The engine's contract is the same as every other engine in
:mod:`repro.incremental`: after ``apply_delta`` the states must equal a batch
recomputation on the updated graph (Theorems 1 and 2).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.backends import is_numpy_backend
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import FactorAdjacency, NonConvergenceError, propagate
from repro.engine.runner import BatchResult, run_batch
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental.base import IncrementalEngine, IncrementalResult
from repro.incremental.revision import (
    accumulative_revision_messages,
    changed_out_sources,
)
from repro.layph.layered_graph import (
    FlattenedUpperDiff,
    LayeredGraph,
    LayphConfig,
    UpperDiff,
)
from repro.layph.shortcuts import compute_shortcuts_from
from repro.layph.vectorized import (
    assign_accumulative_numpy,
    assign_selective_numpy,
    local_upload_numpy,
    seed_tainted_upper,
)
from repro.parallel.executor import parallel_pool

PHASE_UPDATE = "layered graph update"
PHASE_UPLOAD = "messages upload"
PHASE_UPPER = "iterative computation on upper layer"
PHASE_ASSIGN = "messages assignment"


class LayphEngine(IncrementalEngine):
    """Layered-graph incremental engine built on top of the Ingress policies."""

    name = "layph"
    supported_family = "any"

    def __init__(
        self,
        spec: AlgorithmSpec,
        config: Optional[LayphConfig] = None,
        backend: Optional[str] = None,
    ) -> None:
        config = config or LayphConfig()
        if backend is not None and backend != config.backend:
            config = replace(config, backend=backend)
        super().__init__(spec, backend=config.backend)
        self.config = config
        self.layered: Optional[LayeredGraph] = None
        #: states of proxy vertices (kept out of the reported results)
        self.proxy_states: Dict[int, float] = {}
        #: wall-clock seconds spent building the layered graph (Figure 11b)
        self.offline_seconds: float = 0.0
        #: F-work performed while building the layered graph
        self.offline_metrics: ExecutionMetrics = ExecutionMetrics()
        #: internal-only results from the source when it is an internal vertex
        self._local_source_states: Optional[Dict[int, float]] = None
        #: snapshot of the above from before the current delta's rebuild
        self._old_local_source_states: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def _initial_run(self, graph: Graph) -> BatchResult:
        start = time.perf_counter()
        self.layered = LayeredGraph.build(self.spec, graph, self.config)
        self.offline_seconds = time.perf_counter() - start
        self.offline_metrics = self.layered.construction_metrics.copy()
        result = run_batch(
            self.spec,
            graph,
            backend=self.backend,
            adjacency=self._propagation_adjacency(graph),
        )
        self._refresh_local_source_states()
        self._initialise_proxy_states(result.states)
        return result

    def _require_layered(self) -> LayeredGraph:
        if self.layered is None:
            raise RuntimeError("initialize() must be called first")
        return self.layered

    def _source_vertex(self) -> Optional[int]:
        return getattr(self.spec, "source", None)

    def _refresh_local_source_states(self) -> None:
        """(Re)compute internal-only results from an internal source vertex.

        When the rooted algorithm's source sits *inside* a dense subgraph, the
        paths that never leave that subgraph are invisible to the upper layer;
        they are folded here once and refreshed whenever the subgraph is
        rebuilt (selective algorithms only — accumulative engines work purely
        on deltas, for which the batch initialisation already covers them).
        """
        self._local_source_states = None
        if not self.spec.is_selective():
            return
        source = self._source_vertex()
        layered = self._require_layered()
        if source is None or source not in layered.subgraph_of:
            return
        subgraph = layered.subgraphs[layered.subgraph_of[source]]
        if source in subgraph.boundary:
            return
        self._local_source_states = compute_shortcuts_from(
            self.spec,
            subgraph.local_adjacency,
            source,
            subgraph.boundary,
            self.offline_metrics,
            backend=self.backend,
        )
        # The source reaches itself at the identity of combine (distance 0).
        self._local_source_states[source] = self.spec.combine_identity()

    def _initialise_proxy_states(self, states: Dict[int, float]) -> None:
        """Give every proxy a state consistent with its upper-layer in-links."""
        layered = self._require_layered()
        self.proxy_states = {}
        if not self.spec.is_selective():
            for proxy in layered.proxy_vertices():
                self.proxy_states[proxy] = self.spec.aggregate_identity()
            return
        incoming = layered.upper_in_adjacency()
        merged = dict(states)
        for subgraph in layered.subgraphs:
            for proxy in subgraph.proxies:
                value = self._selective_pull(proxy, incoming, merged)
                if self._local_source_states is not None and proxy in self._local_source_states:
                    value = self.spec.aggregate(value, self._local_source_states[proxy])
                self.proxy_states[proxy] = value
                merged[proxy] = value

    def _selective_pull(
        self,
        vertex: int,
        incoming: Dict[int, List[Tuple[int, float]]],
        states: Dict[int, float],
    ) -> float:
        """Best value offered to ``vertex`` by its upper-layer in-links."""
        spec = self.spec
        identity = spec.aggregate_identity()
        best = spec.initial_message(vertex) if vertex >= 0 else identity
        for source, factor in incoming.get(vertex, []):
            source_state = states.get(source, identity)
            if source_state == identity:
                continue
            best = spec.aggregate(best, spec.combine(source_state, factor))
        return best

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        spec = self.spec
        layered = self._require_layered()
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        identity = spec.aggregate_identity()
        old_graph = self._require_graph()

        # Working states: real vertices plus proxies, mutated through all
        # four phases and split back at the end.
        work: Dict[int, float] = dict(self.states)
        work.update(self.proxy_states)

        # ------------------------------------------------------------------
        with phases.phase(PHASE_UPDATE):
            selective = spec.is_selective()
            # Pre-delta out-edge CSR snapshot for the vectorized revision
            # deduction (the cache is patched forward just below).
            old_out_csr = None if selective else self._revision_out_csr(old_graph)
            new_graph = self._update_graph(delta)
            layered.graph = new_graph
            footprint = self.footprint
            touched = (
                footprint.touched_vertices
                if footprint is not None
                else delta.touched_vertices(old_graph)
            )
            added_vertices, removed_vertices = self._vertex_membership_diff(
                old_graph, new_graph
            )

            # Diff-based upper maintenance: sound only while subgraph
            # membership is stable — a removed vertex shifts the
            # same-subgraph test of edges outside the footprint's row set,
            # so those deltas fall back to the full reassembly.
            patch_upper = footprint is not None and not removed_vertices
            link_diff: Optional[object] = None
            if selective:
                old_upper_vertices = set(layered.upper_vertices) | set(self.proxy_states)
                if not patch_upper:
                    # Reassembly fallback: the selective invalidation diffs
                    # two whole-layer flattens (the reference); the patch
                    # path below replaces them with the O(dirty-rows)
                    # ``UpperDiff`` so no per-delta flatten runs.
                    old_upper_links = self._flatten_links(layered.upper_adjacency)
            else:
                old_upper_vertices = set()

            affected = layered.affected_subgraphs(touched)
            affected |= layered.remove_vertices(removed_vertices)
            if patch_upper:
                pre_sources = layered.subgraph_upper_sources(affected)
                pre_boundaries = layered.subgraph_boundaries(affected)
            layered.rebuild_subgraphs(
                sorted(affected), metrics, solver=self._shortcut_solver()
            )
            if patch_upper:
                post_sources = layered.subgraph_upper_sources(affected)
                post_boundaries = layered.subgraph_boundaries(affected)
                link_diff = layered.patch_upper(
                    pre_sources
                    | post_sources
                    | footprint.touched_sources
                    | added_vertices,
                    removed_upper=pre_boundaries - post_boundaries,
                    added_upper=(post_boundaries - pre_boundaries) | added_vertices,
                    want_diff=selective,
                )
            else:
                layered.rebuild_upper()
                if selective:
                    link_diff = FlattenedUpperDiff(
                        old_upper_links,
                        self._flatten_links(layered.upper_adjacency),
                    )

            for vertex in removed_vertices:
                work.pop(vertex, None)
            for vertex in added_vertices:
                work[vertex] = spec.initial_state(vertex)

            source = self._source_vertex()
            self._old_local_source_states = (
                dict(self._local_source_states)
                if self._local_source_states is not None
                else None
            )
            if spec.is_selective() and source is not None:
                source_index = layered.subgraph_of.get(source)
                if source_index is None or source_index in affected:
                    # The source's subgraph was rebuilt, or the source moved
                    # between layers (e.g. it is now an outlier): refresh the
                    # folded internal-only results.
                    self._refresh_local_source_states()

        # ------------------------------------------------------------------
        lup_pending: Dict[int, float] = {}
        snapshot_baseline = (
            0.0 if not spec.is_selective() else identity
        )

        with phases.phase(PHASE_UPLOAD):
            if spec.is_selective():
                tainted = self._selective_upload(
                    link_diff,
                    old_upper_vertices,
                    work,
                    lup_pending,
                    metrics,
                    added_vertices,
                )
            else:
                tainted = set()
                self._accumulative_upload(
                    old_graph,
                    new_graph,
                    work,
                    lup_pending,
                    metrics,
                    removed_vertices,
                    added_vertices,
                    delta=delta,
                    old_csr=old_out_csr,
                    new_csr=(
                        self._revision_out_csr(new_graph)
                        if old_out_csr is not None
                        else None
                    ),
                    footprint=footprint,
                )

        # ------------------------------------------------------------------
        with phases.phase(PHASE_UPPER):
            current_upper_vertices = set(layered.upper_vertices) | layered.proxy_vertices()
            before: Dict[int, float] = {
                vertex: work.get(vertex, snapshot_baseline)
                for vertex in current_upper_vertices
            }
            propagate(
                spec, layered.upper_adjacency, work, lup_pending, metrics, backend=self.backend
            )

        # ------------------------------------------------------------------
        with phases.phase(PHASE_ASSIGN):
            changed_upper: Set[int] = set()
            deltas: Dict[int, float] = {}
            for vertex in current_upper_vertices:
                after = work.get(vertex, snapshot_baseline)
                if spec.is_selective():
                    if after != before[vertex]:
                        changed_upper.add(vertex)
                else:
                    difference = after - before[vertex]
                    if spec.is_significant(difference):
                        changed_upper.add(vertex)
                        deltas[vertex] = difference
            self._assign(
                affected, changed_upper, deltas, work, metrics, new_graph
            )

        # ------------------------------------------------------------------
        proxies = layered.proxy_vertices()
        self.proxy_states = {p: work.get(p, snapshot_baseline) for p in proxies}
        result_states = {
            vertex: work.get(vertex, spec.initial_state(vertex))
            for vertex in new_graph.vertices()
        }
        return IncrementalResult(states=result_states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    # phase 2 helpers
    # ------------------------------------------------------------------
    def _supports(self, offered: float, target_state: float) -> bool:
        """Whether an offered value supports a target's state.

        Shortcut weights are sums (or products) grouped differently from the
        flat batch propagation, so the comparison must allow for a relative
        floating-point slack; being slightly generous here only ever taints
        more vertices, which is safe.
        """
        if offered == target_state:
            return True
        scale = max(1.0, abs(target_state))
        return abs(offered - target_state) <= 1e-9 * scale

    @staticmethod
    def _flatten_links(adjacency: FactorAdjacency) -> Dict[Tuple[int, int], float]:
        links: Dict[Tuple[int, int], float] = {}
        for source in adjacency.vertices_with_out_edges():
            for target, factor in adjacency(source):
                key = (source, target)
                if key in links:
                    # Parallel upper-layer links can appear when a shortcut
                    # coexists with an original edge; keep the better one for
                    # the diff (the propagation itself uses both).
                    links[key] = min(links[key], factor)
                else:
                    links[key] = factor
        return links

    def _accumulative_upload(
        self,
        old_graph: Graph,
        new_graph: Graph,
        work: Dict[int, float],
        lup_pending: Dict[int, float],
        metrics: ExecutionMetrics,
        removed_vertices: Set[int],
        added_vertices: Set[int],
        delta: Optional[GraphDelta] = None,
        old_csr=None,
        new_csr=None,
        footprint=None,
    ) -> None:
        """Deduce revision messages and fold the internal ones to boundaries.

        ``footprint`` (the engine's shared
        :class:`repro.graph.footprint.DeltaFootprint`) supplies the
        changed-source scan computed once per delta; without it ``delta``
        narrows the per-call scan to its footprint (every candidate is still
        verified by adjacency comparison, so the messages and metric counts
        equal the full scan's).  ``old_csr``/``new_csr`` let the deduction
        itself run vectorized on the cached out-edge CSRs.
        """
        spec = self.spec
        layered = self._require_layered()
        identity = spec.aggregate_identity()

        if footprint is not None:
            changed = footprint.changed_sources
        else:
            candidates = delta.touched_sources(old_graph) if delta is not None else None
            changed = changed_out_sources(old_graph, new_graph, candidates)
        pending_full, _added, _removed = accumulative_revision_messages(
            spec,
            old_graph,
            new_graph,
            self.states,
            changed=changed,
            old_csr=old_csr,
            new_csr=new_csr,
            added_vertices=added_vertices,
            removed_vertices=removed_vertices,
        )
        # Deducing each contribution difference evaluates F once per affected
        # out-edge; meter exactly the changed sources the deduction visited.
        for vertex in changed:
            metrics.edge_activations += max(
                old_graph.out_degree(vertex) if old_graph.has_vertex(vertex) else 0,
                new_graph.out_degree(vertex) if new_graph.has_vertex(vertex) else 0,
            )

        per_subgraph: Dict[int, Dict[int, float]] = {}
        for vertex, message in pending_full.items():
            if not new_graph.has_vertex(vertex):
                continue
            index = layered.subgraph_of.get(vertex)
            if index is not None and vertex in layered.subgraphs[index].internal:
                bucket = per_subgraph.setdefault(index, {})
                bucket[vertex] = spec.aggregate(bucket.get(vertex, identity), message)
            else:
                lup_pending[vertex] = spec.aggregate(
                    lup_pending.get(vertex, identity), message
                )

        arrived_maps = self._parallel_local_uploads(per_subgraph, work, metrics)
        if arrived_maps is not None:
            for arrived in arrived_maps.values():
                for vertex, message in arrived.items():
                    lup_pending[vertex] = spec.aggregate(
                        lup_pending.get(vertex, identity), message
                    )
            return
        for index, local_pending in per_subgraph.items():
            subgraph = layered.subgraphs[index]
            arrived = self._local_upload(subgraph, work, local_pending, metrics)
            for vertex, message in arrived.items():
                lup_pending[vertex] = spec.aggregate(
                    lup_pending.get(vertex, identity), message
                )

    def _vectorized_phases(self) -> bool:
        """Whether the vectorized upload/assign kernels should be attempted."""
        return is_numpy_backend(self.backend)

    def _phase_pool(self, units: int):
        """The worker pool for a per-subgraph phase, or ``None`` for serial.

        A pool is only worth engaging under the ``numpy-parallel`` backend
        with more than one independent work unit; worker count and shm
        availability are checked by :func:`repro.parallel.executor.
        parallel_pool` (the graceful-fallback contract).
        """
        from repro.engine.backends import NUMPY_PARALLEL_BACKEND, resolve_backend

        if units <= 1 or resolve_backend(self.backend) != NUMPY_PARALLEL_BACKEND:
            return None
        return parallel_pool()

    def _shortcut_solver(self):
        """Batch solver for deferred phase-1 shortcut recomputations.

        Returns ``None`` — the exact serial inline path — unless the
        resolved backend is ``numpy-parallel``; the returned callable itself
        resolves the pool lazily (one task per rebuilt subgraph, so pooling
        needs at least two subgraphs' solves) and returns ``None`` for the
        serial per-entry fallback when the pool or the array kernels bow
        out.
        """
        from repro.engine.backends import NUMPY_PARALLEL_BACKEND, resolve_backend

        if resolve_backend(self.backend) != NUMPY_PARALLEL_BACKEND:
            return None

        def solve(deferred):
            pool = self._phase_pool(len({index for index, _vertex in deferred}))
            if pool is None:
                return None
            from repro.layph.parallel_phases import parallel_shortcuts

            layered = self._require_layered()
            return parallel_shortcuts(
                self.spec, layered, deferred, layered.construction_metrics, pool
            )

        return solve

    def _parallel_local_uploads(
        self,
        per_subgraph: Dict[int, Dict[int, float]],
        work: Dict[int, float],
        metrics: ExecutionMetrics,
    ) -> Optional[Dict[int, Dict[int, float]]]:
        """Phase-2 uploads across the pool; ``None`` = run the serial loop."""
        pool = self._phase_pool(len(per_subgraph))
        if pool is None:
            return None
        from repro.layph.parallel_phases import parallel_local_uploads

        return parallel_local_uploads(
            self, self._require_layered(), per_subgraph, work, metrics, pool
        )

    def _local_upload(
        self,
        subgraph,
        work: Dict[int, float],
        local_pending: Dict[int, float],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        """Propagate revision messages inside one subgraph (boundary absorbs).

        Internal states are revised in place (Equation (11)); the messages
        that reach boundary vertices are returned so the caller can feed them
        into the upper-layer iteration (Equation (7)).  Under the numpy
        backend the propagation runs on the subgraph's compiled CSR
        (:func:`repro.layph.vectorized.local_upload_numpy`), metric-identical
        to the Python loop below, which remains the reference and the
        fallback for inputs the kernel cannot express (e.g. NaN factors).

        Raises:
            NonConvergenceError: if significant messages remain after the
                round cap.  Returning the partial result instead would leave
                stale internal states behind and silently corrupt every
                subsequent delta.
        """
        if self._vectorized_phases():
            arrived = local_upload_numpy(self.spec, subgraph, work, local_pending, metrics)
            if arrived is not None:
                return arrived
        spec = self.spec
        identity = spec.aggregate_identity()
        boundary = subgraph.boundary
        adjacency = subgraph.local_adjacency
        pending = dict(local_pending)
        arrived: Dict[int, float] = {}
        rounds = 0
        max_rounds = 10_000
        while pending:
            active = sorted(
                vertex for vertex, message in pending.items() if spec.is_significant(message)
            )
            if not active:
                break
            if rounds >= max_rounds:
                raise NonConvergenceError(
                    f"local revision-message upload in subgraph {subgraph.index} "
                    f"did not converge within {max_rounds} rounds for "
                    f"{spec.name!r}; {len(active)} significant pending "
                    "messages remain"
                )
            snapshot = {vertex: pending.pop(vertex) for vertex in active}
            activations = 0
            for vertex, message in snapshot.items():
                if vertex in boundary:
                    # Boundary vertices accumulate but never re-propagate here;
                    # their own revision happens on the upper layer.
                    arrived[vertex] = spec.aggregate(arrived.get(vertex, identity), message)
                    continue
                old_state = work.get(vertex, spec.initial_state(vertex))
                new_state = spec.aggregate(old_state, message)
                if spec.is_selective() and new_state == old_state:
                    continue
                work[vertex] = new_state
                out_value = new_state if spec.is_selective() else message
                for target, factor in adjacency(vertex):
                    activations += 1
                    produced = spec.combine(out_value, factor)
                    if spec.absorbs(target) or not spec.is_significant(produced):
                        continue
                    pending[target] = spec.aggregate(pending.get(target, identity), produced)
            metrics.record_round(activations, len(snapshot))
            rounds += 1
        return arrived

    def _selective_upload(
        self,
        link_diff,
        old_upper_vertices: Set[int],
        work: Dict[int, float],
        lup_pending: Dict[int, float],
        metrics: ExecutionMetrics,
        added_vertices: Set[int],
    ) -> Set[int]:
        """Invalidate, trim and seed the upper layer for selective algorithms.

        Upper-layer links whose factor grew or disappeared may have supported
        their target; the dependents of such targets (following supporting
        links of the *old* upper layer) are reset to the identity and
        re-seeded from their surviving in-links.  Links that are new or whose
        factor shrank contribute compensation messages.  ``link_diff`` is the
        delta's upper-row diff (:class:`repro.layph.layered_graph.UpperDiff`
        from the patch path, or the flatten-based fallback) — an unchanged
        ``(source, target)`` link can never be a root or a compensation, so
        iterating only the changed pairs reproduces the full-flatten scans.
        """
        spec = self.spec
        layered = self._require_layered()
        identity = spec.aggregate_identity()
        current_upper = set(layered.upper_vertices) | layered.proxy_vertices()
        changed_links = list(link_diff.changed_links())

        # Invalidation roots from worsened/removed upper links.
        roots: Set[int] = set()
        for source, target, old_factor, new_factor in changed_links:
            if old_factor is None:
                continue
            if new_factor is not None and new_factor <= old_factor:
                continue
            source_state = work.get(source, identity)
            target_state = work.get(target, identity)
            if source_state == identity or target_state == identity:
                continue
            if self._supports(spec.combine(source_state, old_factor), target_state):
                roots.add(target)

        # Invalidation roots from the folded root message of an internal
        # source: when its internal-only path to a boundary vertex grows (or
        # disappears because the source moved onto the upper layer), boundary
        # values that relied on it are no longer trustworthy.
        old_folded = self._old_local_source_states or {}
        new_folded = self._local_source_states or {}
        for vertex, old_value in old_folded.items():
            new_value = new_folded.get(vertex)
            if new_value is not None and new_value <= old_value:
                continue
            target_state = work.get(vertex, identity)
            if target_state == identity:
                continue
            if self._supports(old_value, target_state):
                roots.add(vertex)

        tainted = self._upper_dependents(link_diff, work, roots)
        # Upper-layer vertices with no trustworthy upper-layer history are
        # treated as invalid too: fresh proxies and brand-new graph vertices
        # (no state at all), and vertices that were internal before this
        # delta (their old value was supported by intra-subgraph structure
        # that has just been rebuilt, so no link diff can vouch for it).
        for vertex in current_upper:
            if vertex not in work or vertex not in old_upper_vertices:
                tainted.add(vertex)
        tainted &= current_upper

        for vertex in tainted:
            work[vertex] = identity
        seeded = self._vectorized_phases() and seed_tainted_upper(
            spec, layered, tainted, work, lup_pending, metrics
        )
        if not seeded:
            incoming = layered.upper_in_adjacency()
            for vertex in sorted(tainted):
                best = spec.initial_message(vertex) if vertex >= 0 else identity
                for source, factor in incoming.get(vertex, []):
                    metrics.edge_activations += 1
                    if source in tainted:
                        continue
                    source_state = work.get(source, identity)
                    if source_state == identity:
                        continue
                    best = spec.aggregate(best, spec.combine(source_state, factor))
                if spec.is_significant(best):
                    lup_pending[vertex] = spec.aggregate(
                        lup_pending.get(vertex, identity), best
                    )

        # Compensation from new or improved upper links.
        for source, target, old_factor, new_factor in changed_links:
            if new_factor is None:
                continue
            if old_factor is not None and new_factor >= old_factor:
                continue
            if source in tainted:
                continue
            source_state = work.get(source, identity)
            if source_state == identity:
                continue
            metrics.edge_activations += 1
            offered = spec.combine(source_state, new_factor)
            if spec.is_significant(offered) and not spec.absorbs(target):
                lup_pending[target] = spec.aggregate(
                    lup_pending.get(target, identity), offered
                )

        # Root messages: brand-new vertices that carry one (a new source), and
        # the folded root message of an internal source (Equation (7)).
        for vertex in added_vertices:
            root = spec.initial_message(vertex)
            if spec.is_significant(root):
                lup_pending[vertex] = spec.aggregate(
                    lup_pending.get(vertex, identity), root
                )
        if self._local_source_states is not None:
            source = self._source_vertex()
            index = layered.subgraph_of.get(source) if source is not None else None
            if index is not None:
                for boundary_vertex in layered.subgraphs[index].boundary:
                    folded = self._local_source_states.get(boundary_vertex)
                    if folded is not None and spec.is_significant(folded):
                        lup_pending[boundary_vertex] = spec.aggregate(
                            lup_pending.get(boundary_vertex, identity), folded
                        )
        return tainted

    def _upper_dependents(
        self,
        link_diff,
        work: Dict[int, float],
        roots: Set[int],
    ) -> Set[int]:
        """Dependents of ``roots`` along supporting links of the old Lup.

        The old out-links are pulled per visited vertex from ``link_diff``
        (captured rows for the dirty sources, the untouched adjacency rows
        for everything else), so the walk costs O(region) instead of the
        O(Lup) supporters map the flatten-based implementation built.
        """
        spec = self.spec
        identity = spec.aggregate_identity()
        tainted: Set[int] = set()
        stack = list(roots)
        while stack:
            vertex = stack.pop()
            if vertex in tainted:
                continue
            tainted.add(vertex)
            source_state = work.get(vertex, identity)
            if source_state == identity:
                continue
            for target, factor in link_diff.old_links_of(vertex).items():
                if target in tainted:
                    continue
                target_state = work.get(target, identity)
                if target_state == identity:
                    continue
                if self._supports(spec.combine(source_state, factor), target_state):
                    stack.append(target)
        return tainted

    # ------------------------------------------------------------------
    # phase 4
    # ------------------------------------------------------------------
    def _assign(
        self,
        affected: Set[int],
        changed_upper: Set[int],
        deltas: Dict[int, float],
        work: Dict[int, float],
        metrics: ExecutionMetrics,
        new_graph: Graph,
    ) -> None:
        """Push boundary results down to internal vertices through shortcuts."""
        spec = self.spec
        layered = self._require_layered()

        # Which subgraphs need assignment: those rebuilt this round plus those
        # whose boundary (or proxies) changed during the upper-layer iteration
        # (proxy ownership served from the index maintained at rebuild).
        to_assign: Set[int] = set(affected)
        for vertex in changed_upper:
            index = layered.subgraph_of.get(vertex)
            if index is None:
                index = layered.proxy_owner_of(vertex)
            if index is not None:
                to_assign.add(index)
        to_assign = {index for index in to_assign if index < len(layered.subgraphs)}

        source = self._source_vertex()
        order = [
            index
            for index in sorted(to_assign)
            if layered.subgraphs[index].internal
        ]
        pool = self._phase_pool(len(order))
        if pool is not None and self._vectorized_phases():
            from repro.layph.parallel_phases import parallel_assign

            if parallel_assign(
                self, order, deltas, work, metrics, new_graph, source, pool
            ):
                return
        for index in order:
            subgraph = layered.subgraphs[index]
            if spec.is_selective():
                self._assign_selective(subgraph, work, metrics, new_graph, source)
            else:
                self._assign_accumulative(subgraph, deltas, work, metrics, new_graph)

    def _assign_selective(
        self,
        subgraph,
        work: Dict[int, float],
        metrics: ExecutionMetrics,
        new_graph: Graph,
        source: Optional[int],
    ) -> None:
        """Best-offer assignment of one subgraph (boundary → internal).

        The boundary scan is vectorized under the numpy backend
        (:func:`repro.layph.vectorized.assign_selective_numpy`); both paths
        scan boundary vertices in ascending id order and produce identical
        ``best`` maps, activation counts and state writes.
        """
        spec = self.spec
        layered = self._require_layered()
        identity = spec.aggregate_identity()
        best: Optional[Dict[int, float]] = None
        if self._vectorized_phases():
            best = assign_selective_numpy(spec, subgraph, work, metrics)
        if best is None:
            best = {
                vertex: spec.initial_message(vertex) for vertex in subgraph.internal
            }
            for boundary_vertex in sorted(subgraph.boundary):
                boundary_state = work.get(boundary_vertex, identity)
                if boundary_state == identity:
                    continue
                for target, factor in subgraph.internal_shortcuts(boundary_vertex).items():
                    metrics.edge_activations += 1
                    candidate = spec.combine(boundary_state, factor)
                    best[target] = spec.aggregate(best[target], candidate)
        self._finish_selective_assign(subgraph, best, work, new_graph, source)

    def _finish_selective_assign(
        self,
        subgraph,
        best: Dict[int, float],
        work: Dict[int, float],
        new_graph: Graph,
        source: Optional[int],
    ) -> None:
        """Fold the source's local results into ``best`` and write it back.

        Shared by the serial scan above and the parallel merge
        (:func:`repro.layph.parallel_phases.parallel_assign`), which hands in
        the pool-computed ``best`` map.
        """
        spec = self.spec
        layered = self._require_layered()
        if (
            self._local_source_states is not None
            and source is not None
            and layered.subgraph_of.get(source) == subgraph.index
        ):
            for target in subgraph.internal:
                folded = self._local_source_states.get(target)
                if folded is not None:
                    best[target] = spec.aggregate(best[target], folded)
        for target, value in best.items():
            if new_graph.has_vertex(target):
                work[target] = value

    def _assign_accumulative(
        self,
        subgraph,
        deltas: Dict[int, float],
        work: Dict[int, float],
        metrics: ExecutionMetrics,
        new_graph: Graph,
    ) -> None:
        """Delta push of one subgraph's boundary changes through its shortcuts.

        Vectorized under the numpy backend
        (:func:`repro.layph.vectorized.assign_accumulative_numpy`); both paths
        apply boundary deltas in ascending id order (shortcut-table order
        within a boundary vertex), so the non-associative float sums agree
        bit for bit.
        """
        spec = self.spec
        if self._vectorized_phases():
            if assign_accumulative_numpy(spec, subgraph, deltas, work, metrics, new_graph):
                return
        for boundary_vertex in sorted(subgraph.boundary):
            difference = deltas.get(boundary_vertex)
            if difference is None or not spec.is_significant(difference):
                continue
            for target, factor in subgraph.internal_shortcuts(boundary_vertex).items():
                if spec.absorbs(target) or not new_graph.has_vertex(target):
                    continue
                metrics.edge_activations += 1
                work[target] = spec.aggregate(
                    work.get(target, spec.initial_state(target)),
                    spec.combine(difference, factor),
                )

    # ------------------------------------------------------------------
    # durable snapshots (repro.storage)
    # ------------------------------------------------------------------
    def _snapshot_extras(self):
        from repro.storage.codecs import encode_float_map, pack

        layered = self._require_layered()
        meta = {
            "layered": layered.to_state(),
            "offline_seconds": self.offline_seconds,
            "offline_metrics": {
                "edge_activations": self.offline_metrics.edge_activations,
                "vertex_updates": self.offline_metrics.vertex_updates,
                "iterations": self.offline_metrics.iterations,
                "activations_per_round": list(
                    self.offline_metrics.activations_per_round
                ),
                "active_vertices_per_round": list(
                    self.offline_metrics.active_vertices_per_round
                ),
            },
            "has_local_source_states": self._local_source_states is not None,
        }
        arrays = dict(pack("proxy_states", encode_float_map(self.proxy_states)))
        if self._local_source_states is not None:
            arrays.update(
                pack("local_source_states", encode_float_map(self._local_source_states))
            )
        return meta, arrays

    def _restore_extras(self, meta: dict, arrays) -> None:
        from repro.storage.codecs import decode_float_map, unpack

        graph = self._require_graph()
        self.layered = LayeredGraph.from_state(
            self.spec, graph, self.config, meta["layered"]
        )
        self.offline_seconds = float(meta["offline_seconds"])
        offline = meta["offline_metrics"]
        self.offline_metrics = ExecutionMetrics(
            edge_activations=int(offline["edge_activations"]),
            vertex_updates=int(offline["vertex_updates"]),
            iterations=int(offline["iterations"]),
            activations_per_round=[
                int(count) for count in offline["activations_per_round"]
            ],
            active_vertices_per_round=[
                int(count) for count in offline["active_vertices_per_round"]
            ],
        )
        self.proxy_states = decode_float_map(unpack("proxy_states", arrays))
        if meta.get("has_local_source_states"):
            self._local_source_states = decode_float_map(
                unpack("local_source_states", arrays)
            )
        else:
            self._local_source_states = None
        # ``_old_local_source_states`` is rewritten at the start of every
        # ``_apply_delta`` before it is read, so a fresh ``None`` is exact.
        self._old_local_source_states = None
