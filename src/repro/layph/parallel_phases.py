"""Process-parallel execution of Layph's per-subgraph phases.

Layph's phase-1 shortcut recomputations, phase-2 local uploads and phase-4
shortcut assignments are embarrassingly parallel across subgraphs: a
shortcut solve reads only its own subgraph's local adjacency and writes a
private state vector, an upload reads and writes only its own subgraph's
internal states (boundary vertices are accumulated into a private
``arrived`` map, never revised), and an assignment writes only its own
internal vertices.  The coordinators below exploit that: every subgraph's
work unit is compiled to arrays (the same slabs/CSRs the serial numpy
kernels use), exported to one shared-memory arena, dispatched to the
persistent worker pool under the LPT schedule, and merged back **in the
serial processing order** — per-subgraph results are disjoint, so replaying
the serial order at merge time makes states, metrics and error behaviour
bitwise-identical to the serial numpy path.

All-or-nothing gating: if any subgraph cannot be expressed as arrays (NaN
inputs, undeclared algebra) or the total work is below
``REPRO_PARALLEL_MIN_EDGES``, the coordinator returns ``None`` / ``False``
*before mutating anything* and the engine runs its serial loop.  A
:class:`repro.parallel.executor.WorkerPoolError` degrades the same way —
engine state is only ever touched during the merge, which runs strictly
after the pool round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.dense_propagation import AGGREGATE_MIN, COMBINE_ADD, classify_spec
from repro.engine.metrics import ExecutionMetrics
from repro.engine.parallel_propagation import parallel_min_edges
from repro.graph.csr import FactorCSR
from repro.layph.vectorized import (
    _shortcut_csr,
    build_upload_slab,
    upload_nonconvergence_error,
)
from repro.parallel import shm
from repro.parallel.executor import (
    POOL_STATS,
    WorkerPool,
    WorkerPoolError,
    run_with_respawn,
)


#: slab fields exported to the arena for one upload task, in payload order
_UPLOAD_FIELDS = (
    "offsets",
    "targets",
    "factors",
    "out_degree",
    "state",
    "pending",
    "in_dict",
    "state_touched",
    "absorb",
    "boundary",
    "arrived",
    "arrived_touched",
)


def parallel_local_uploads(
    engine,
    layered,
    per_subgraph: Dict[int, Dict[int, float]],
    work: Dict[int, float],
    metrics: ExecutionMetrics,
    pool: WorkerPool,
    max_rounds: int = 10_000,
) -> Optional[Dict[int, Dict[int, float]]]:
    """Run every pending subgraph's local upload across the pool.

    Returns ``{subgraph index: arrived map}`` in ``per_subgraph`` order, with
    ``work``/``metrics`` already revised exactly as the serial per-subgraph
    loop would have; ``None`` (nothing mutated) tells the engine to run the
    serial loop instead.

    Raises:
        NonConvergenceError: replayed in serial order — every subgraph that
            the serial loop would have finished before the offender is
            merged first, then the offender's completed rounds are recorded
            and the serial loop's exact error raised.
    """
    spec = engine.spec
    slabs: List[Tuple[int, object, list]] = []
    for index, local_pending in per_subgraph.items():
        built = build_upload_slab(spec, layered.subgraphs[index], work, local_pending)
        if built is None:
            return None
        slab, ids = built
        slabs.append((index, slab, ids))
    total_edges = sum(int(slab.targets.size) for _i, slab, _v in slabs)
    if total_edges < parallel_min_edges():
        return None

    arrays = []
    for _index, slab, _ids in slabs:
        arrays.extend(getattr(slab, field) for field in _UPLOAD_FIELDS)
    # One export per attempt: a worker that died mid-upload may have
    # half-mutated the previous arena, so the retry (run_with_respawn) must
    # re-share the pristine slab arrays rather than reuse the old refs.
    holder: Dict[str, object] = {"arena": None}

    def build_tasks():
        if holder["arena"] is not None:
            holder["arena"].close()
            holder["arena"] = None
        arena, refs = shm.share_many(arrays)
        holder["arena"] = arena
        tasks = []
        costs = []
        for position, (_index, slab, _ids) in enumerate(slabs):
            base = position * len(_UPLOAD_FIELDS)
            payload = {
                field: refs[base + offset]
                for offset, field in enumerate(_UPLOAD_FIELDS)
            }
            payload.update(
                allowed=None,
                selective=slab.selective,
                combine_add=slab.combine_add,
                identity=slab.identity,
                tolerance=slab.tolerance,
                max_rounds=max_rounds,
            )
            tasks.append(("upload", payload))
            costs.append(float(slab.targets.size + slab.state.size))
        return tasks, costs

    try:
        try:
            results, _pool = run_with_respawn(pool, build_tasks)
        except shm.ShmUnavailable:
            return None
        except WorkerPoolError:
            return None

        # Merge in the serial processing order (``per_subgraph`` insertion
        # order); per-subgraph writes are disjoint, so this replay is
        # bitwise-identical to running the subgraphs one by one.
        arena = holder["arena"]
        arrived_maps: Dict[int, Dict[int, float]] = {}
        for position, (index, _slab, ids) in enumerate(slabs):
            result = results[position]
            for total, active, _updates in result["rounds"]:
                metrics.record_round(total, active)
            if result["remaining"]:
                raise upload_nonconvergence_error(
                    index, spec.name, max_rounds, result["remaining"]
                )
            base = position * len(_UPLOAD_FIELDS)
            state = arena.view(base + _UPLOAD_FIELDS.index("state"))
            state_touched = arena.view(base + _UPLOAD_FIELDS.index("state_touched"))
            arrived = arena.view(base + _UPLOAD_FIELDS.index("arrived"))
            arrived_touched = arena.view(
                base + _UPLOAD_FIELDS.index("arrived_touched")
            )
            for row in np.nonzero(state_touched)[0]:
                work[ids[row]] = float(state[row])
            arrived_maps[index] = {
                ids[row]: float(arrived[row])
                for row in np.nonzero(arrived_touched)[0]
            }
        return arrived_maps
    finally:
        if holder["arena"] is not None:
            holder["arena"].close()


#: arrays exported to the arena for one shortcut-solve batch, in payload order
_SHORTCUT_FIELDS = (
    "offsets",
    "targets",
    "factors",
    "full_degree",
    "silenced_degree",
    "absorb",
    "source_rows",
    "states_out",
    "first_mask",
    "final_mask",
)


def parallel_shortcuts(
    spec,
    layered,
    deferred: List[Tuple[int, int]],
    metrics: ExecutionMetrics,
    pool: WorkerPool,
) -> Optional[List[Dict[int, float]]]:
    """Batch-solve deferred shortcut recomputations across the pool.

    ``deferred`` is the rebuild pass's ``(subgraph index, boundary vertex)``
    list (see :meth:`repro.layph.layered_graph.LayeredGraph.
    rebuild_subgraphs`); each rebuilt subgraph's solves form one
    LPT-scheduled ``"shortcuts"`` task running
    :func:`repro.parallel.slabs.run_shortcut_solves` over the subgraph's
    compiled local CSR.  Returns the shortcut vectors in ``deferred`` order
    with ``metrics`` (the layered graph's construction metrics) replayed
    exactly as the serial solves would have recorded them; ``None``
    (nothing mutated) tells the caller to run the serial solves.

    Bitwise identity with :func:`repro.layph.shortcuts.
    compute_shortcuts_from`: every solve runs the same two-phase neutral
    propagation on the same ascending-id dense index space (extra rows from
    batching the subgraph's solves into one id space never activate), and
    the merge rebuilds the reference's dict insertion order — phase-1
    touched rows ascending, then newly touched rows ascending — before
    applying the reference's exact post-filter.
    """
    kinds = classify_spec(spec)
    if kinds is None:
        return None
    selective = kinds[0] == AGGREGATE_MIN
    combine_add = kinds[1] == COMBINE_ADD
    identity = float(spec.aggregate_identity())
    unit = float(spec.combine_identity())
    tolerance = 0.0 if selective else float(spec.tolerance())
    run_first = bool(spec.is_significant(unit))

    order: List[int] = []
    groups: Dict[int, List[int]] = {}
    for index, vertex in deferred:
        if index not in groups:
            groups[index] = []
            order.append(index)
        groups[index].append(vertex)

    units: List[Tuple[int, FactorCSR, List[np.ndarray]]] = []
    total_edges = 0
    for index in order:
        subgraph = layered.subgraphs[index]
        csr = FactorCSR.from_factor_adjacency(
            subgraph.local_adjacency, universe=subgraph.boundary
        )
        if np.isnan(csr.factors).any():
            return None
        n = csr.num_vertices
        silenced_degree = csr.out_degree.copy()
        for vertex in subgraph.boundary:
            position = csr.index.get(vertex)
            if position is not None:
                silenced_degree[position] = 0
        absorb = np.fromiter(
            (bool(spec.absorbs(vertex)) for vertex in csr.vertex_ids), bool, count=n
        )
        sources = groups[index]
        source_rows = np.fromiter(
            (csr.index[vertex] for vertex in sources), np.int64, count=len(sources)
        )
        solves = len(sources)
        arrays = [
            csr.offsets,
            csr.targets,
            csr.factors,
            csr.out_degree,
            silenced_degree,
            absorb,
            source_rows,
            np.full((solves, n), identity, dtype=np.float64),
            np.zeros((solves, n), dtype=bool),
            np.zeros((solves, n), dtype=bool),
        ]
        units.append((index, csr, arrays))
        total_edges += int(csr.targets.size) * solves
    if total_edges < parallel_min_edges():
        return None

    flat: List[np.ndarray] = []
    for _index, _csr, arrays in units:
        flat.extend(arrays)
    # As in the other phases, each retry attempt re-exports the pristine
    # arrays into a fresh arena (a dead worker may have half-written the
    # previous one's output regions).
    holder: Dict[str, object] = {"arena": None}

    def build_tasks():
        if holder["arena"] is not None:
            holder["arena"].close()
            holder["arena"] = None
        arena, refs = shm.share_many(flat)
        holder["arena"] = arena
        tasks = []
        costs = []
        for position, (_index, csr, arrays) in enumerate(units):
            base = position * len(_SHORTCUT_FIELDS)
            payload = {
                field: refs[base + offset]
                for offset, field in enumerate(_SHORTCUT_FIELDS)
            }
            payload.update(
                run_first=run_first,
                selective=selective,
                combine_add=combine_add,
                identity=identity,
                tolerance=tolerance,
                unit=unit,
            )
            tasks.append(("shortcuts", payload))
            costs.append(float(arrays[7].shape[0] * (csr.targets.size + csr.num_vertices)))
        return tasks, costs

    try:
        try:
            results, _pool = run_with_respawn(pool, build_tasks)
        except shm.ShmUnavailable:
            return None
        except WorkerPoolError:
            return None

        POOL_STATS.shortcut_batches += 1
        arena = holder["arena"]
        vectors: Dict[Tuple[int, int], Dict[int, float]] = {}
        for position, (index, csr, _arrays) in enumerate(units):
            ids = csr.vertex_ids
            base = position * len(_SHORTCUT_FIELDS)
            states_out = arena.view(base + _SHORTCUT_FIELDS.index("states_out"))
            first_mask = arena.view(base + _SHORTCUT_FIELDS.index("first_mask"))
            final_mask = arena.view(base + _SHORTCUT_FIELDS.index("final_mask"))
            for solve, source in enumerate(groups[index]):
                for total, active, updates in results[position][solve]:
                    metrics.vertex_updates += updates
                    metrics.record_round(total, active)
                row_states = states_out[solve]
                first = np.nonzero(first_mask[solve])[0]
                fresh = np.nonzero(final_mask[solve] & ~first_mask[solve])[0]
                shortcut: Dict[int, float] = {}
                for row in list(first) + list(fresh):
                    target = ids[int(row)]
                    value = float(row_states[int(row)])
                    if target == source:
                        # The reference strips the injected unit: only mass
                        # returned through internal cycles survives.
                        if selective:
                            continue
                        surplus = value - unit
                        if spec.is_significant(surplus):
                            shortcut[target] = surplus
                        continue
                    if selective:
                        if value != identity:
                            shortcut[target] = value
                    elif spec.is_significant(value):
                        shortcut[target] = value
                vectors[(index, source)] = shortcut
        return [vectors[entry] for entry in deferred]
    finally:
        if holder["arena"] is not None:
            holder["arena"].close()


def parallel_assign(
    engine,
    indices: List[int],
    deltas: Dict[int, float],
    work: Dict[int, float],
    metrics: ExecutionMetrics,
    new_graph,
    source: Optional[int],
    pool: WorkerPool,
) -> bool:
    """Run phase 4's shortcut assignments for ``indices`` across the pool.

    ``indices`` must already be the serial processing order (ascending) with
    empty-internal subgraphs dropped.  Returns ``True`` with ``work`` and
    ``metrics`` revised exactly like the serial loop, ``False`` (nothing
    mutated) for the serial fallback.
    """
    spec = engine.spec
    kinds = classify_spec(spec)
    if kinds is None:
        return False
    selective = kinds[0] == AGGREGATE_MIN
    combine_add = kinds[1] == COMBINE_ADD
    layered = engine._require_layered()
    identity = spec.aggregate_identity()

    units = []  # (index, csr, per-kind prepared arrays)
    for index in indices:
        subgraph = layered.subgraphs[index]
        csr = _shortcut_csr(subgraph)
        if np.isnan(csr.factors).any():
            return False
        if selective:
            source_values = np.fromiter(
                (work.get(vertex, identity) for vertex in csr.boundary_ids),
                np.float64,
                count=len(csr.boundary_ids),
            )
            if np.isnan(source_values).any():
                return False
            best = np.fromiter(
                (spec.initial_message(vertex) for vertex in csr.internal_ids),
                np.float64,
                count=len(csr.internal_ids),
            )
            units.append((index, subgraph, csr, source_values, best))
        else:
            boundary_deltas = np.zeros(len(csr.boundary_ids), dtype=np.float64)
            live_mask = np.zeros(len(csr.boundary_ids), dtype=bool)
            for position, vertex in enumerate(csr.boundary_ids):
                difference = deltas.get(vertex)
                if difference is None or not spec.is_significant(difference):
                    continue
                if np.isnan(difference):
                    return False
                boundary_deltas[position] = difference
                live_mask[position] = True
            values = np.fromiter(
                (
                    work[vertex]
                    if vertex in work
                    else float(spec.initial_state(vertex))
                    for vertex in csr.internal_ids
                ),
                np.float64,
                count=len(csr.internal_ids),
            )
            if np.isnan(values).any():
                return False
            allowed = np.fromiter(
                (
                    not spec.absorbs(vertex) and new_graph.has_vertex(vertex)
                    for vertex in csr.internal_ids
                ),
                bool,
                count=len(csr.internal_ids),
            )
            units.append(
                (index, subgraph, csr, boundary_deltas, live_mask, values, allowed)
            )
    total_edges = sum(int(unit[2].targets.size) for unit in units)
    if total_edges < parallel_min_edges():
        return False

    # The mutated array (``best`` / ``values``) must be shared; the CSR
    # block rides along in the same arena (one segment per phase).  As in
    # the upload phase, each retry attempt re-exports the pristine source
    # arrays into a fresh arena (see ``run_with_respawn``).
    arrays = []
    for unit in units:
        csr = unit[2]
        arrays.extend((csr.offsets, csr.counts, csr.targets, csr.factors))
        arrays.append(unit[4] if selective else unit[5])  # best / values
    holder: Dict[str, object] = {"arena": None}

    def build_tasks():
        if holder["arena"] is not None:
            holder["arena"].close()
            holder["arena"] = None
        arena, refs = shm.share_many(arrays)
        holder["arena"] = arena
        tasks = []
        costs = []
        for position, unit in enumerate(units):
            base = position * 5
            csr_refs = dict(
                offsets=refs[base],
                counts=refs[base + 1],
                targets=refs[base + 2],
                factors=refs[base + 3],
            )
            if selective:
                payload = dict(
                    csr_refs,
                    source_values=unit[3],
                    best=refs[base + 4],
                    identity=identity,
                    combine_add=combine_add,
                )
                tasks.append(("assign_best", payload))
            else:
                payload = dict(
                    csr_refs,
                    source_deltas=unit[3],
                    live=unit[4],
                    values=refs[base + 4],
                    allowed=unit[6],
                    combine_add=combine_add,
                )
                tasks.append(("assign_deltas", payload))
            costs.append(float(unit[2].targets.size + 1))
        return tasks, costs

    try:
        try:
            results, _pool = run_with_respawn(pool, build_tasks)
        except shm.ShmUnavailable:
            return False
        except WorkerPoolError:
            return False

        arena = holder["arena"]
        for position, unit in enumerate(units):
            index, subgraph, csr = unit[0], unit[1], unit[2]
            mutated = arena.view(position * 5 + 4)
            if selective:
                metrics.edge_activations += int(results[position])
                best_map = dict(zip(csr.internal_ids, mutated.tolist()))
                engine._finish_selective_assign(
                    subgraph, best_map, work, new_graph, source
                )
            else:
                result = results[position]
                metrics.edge_activations += int(result["applied"])
                for row in np.nonzero(result["touched"])[0]:
                    work[csr.internal_ids[row]] = float(mutated[row])
        return True
    finally:
        if holder["arena"] is not None:
            holder["arena"].close()
