"""Entry/exit/internal classification and the dense-subgraph rule.

Definition 1 of the paper: given a subgraph ``G_i(V_i, E_i)`` of ``G``,

* entry vertices have an in-edge from outside ``V_i``,
* exit vertices have an out-edge to outside ``V_i``,
* internal vertices are the rest.

Definition 2: the subgraph is *dense* when ``|V_I| · |V_O| < |E_i|`` — the
shortcuts it would need are cheaper than the internal edges they replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.graph.graph import Graph


@dataclass
class BoundaryClassification:
    """Entry/exit/internal split of one candidate subgraph."""

    members: Set[int] = field(default_factory=set)
    entry: Set[int] = field(default_factory=set)
    exit: Set[int] = field(default_factory=set)
    internal: Set[int] = field(default_factory=set)
    internal_edges: int = 0

    @property
    def boundary(self) -> Set[int]:
        """Entry plus exit vertices."""
        return self.entry | self.exit


def classify_boundary(graph: Graph, members: Iterable[int]) -> BoundaryClassification:
    """Classify the vertices of a candidate subgraph (Definition 1)."""
    member_set = {vertex for vertex in members if graph.has_vertex(vertex)}
    classification = BoundaryClassification(members=member_set)
    internal_edges = 0
    for vertex in member_set:
        for in_neighbor in graph.in_neighbors(vertex):
            if in_neighbor not in member_set:
                classification.entry.add(vertex)
                break
        for out_neighbor in graph.out_neighbors(vertex):
            if out_neighbor not in member_set:
                classification.exit.add(vertex)
                break
        for out_neighbor in graph.out_neighbors(vertex):
            if out_neighbor in member_set:
                internal_edges += 1
    classification.internal = member_set - classification.entry - classification.exit
    classification.internal_edges = internal_edges
    return classification


def is_dense(classification: BoundaryClassification) -> bool:
    """Definition 2: ``|V_I| · |V_O| < |E_i|``.

    A subgraph with no internal vertex gains nothing from shortcuts, so it is
    also rejected regardless of the product rule.
    """
    if not classification.internal:
        return False
    product = len(classification.entry) * len(classification.exit)
    return product < classification.internal_edges


def select_dense_subgraphs(
    graph: Graph,
    candidates: Sequence[Sequence[int]],
    min_size: int = 3,
    apply_density_rule: bool = True,
) -> List[BoundaryClassification]:
    """Filter community candidates down to dense subgraphs.

    Args:
        graph: the full graph.
        candidates: candidate vertex groups (communities).
        min_size: candidates smaller than this are discarded outright.
        apply_density_rule: when ``False`` every sufficiently large candidate
            with at least one internal vertex is accepted; used by the
            density-rule ablation benchmark.
    """
    selected: List[BoundaryClassification] = []
    for members in candidates:
        if len(members) < min_size:
            continue
        classification = classify_boundary(graph, members)
        if not classification.internal:
            continue
        if apply_density_rule and not is_dense(classification):
            continue
        selected.append(classification)
    return selected
