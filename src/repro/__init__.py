"""Layph reproduction: layered-graph incremental graph processing.

This package reimplements, in pure Python, the system described in
"Layph: Making Change Propagation Constraint in Incremental Graph Processing
by Layering Graph" (ICDE 2023), together with every substrate it builds on
and every baseline it is evaluated against.

Typical usage::

    from repro import Graph, GraphDelta, LayphEngine, SSSP

    graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 5.0)])
    engine = LayphEngine(SSSP(source=0))
    engine.initialize(graph)

    delta = GraphDelta()
    delta.add_edge(2, 3, 1.0)
    result = engine.apply_delta(delta)
    print(result.states[3])
"""

from repro.engine.algorithms import BFS, PHP, PageRank, SSSP, make_algorithm
from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental import (
    DZiGEngine,
    GraphBoltEngine,
    IngressEngine,
    KickStarterEngine,
    RestartEngine,
    RisGraphEngine,
)
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig, build_layered_graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphDelta",
    "SSSP",
    "BFS",
    "PageRank",
    "PHP",
    "make_algorithm",
    "run_batch",
    "RestartEngine",
    "KickStarterEngine",
    "RisGraphEngine",
    "GraphBoltEngine",
    "DZiGEngine",
    "IngressEngine",
    "LayphEngine",
    "LayeredGraph",
    "LayphConfig",
    "build_layered_graph",
    "__version__",
]
