"""Layph reproduction: layered-graph incremental graph processing.

This package reimplements, in pure Python, the system described in
"Layph: Making Change Propagation Constraint in Incremental Graph Processing
by Layering Graph" (ICDE 2023), together with every substrate it builds on
and every baseline it is evaluated against.

Typical usage::

    from repro import Graph, GraphDelta, LayphEngine, SSSP

    graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 5.0)])
    engine = LayphEngine(SSSP(source=0))
    engine.initialize(graph)

    delta = GraphDelta()
    delta.add_edge(2, 3, 1.0)
    result = engine.apply_delta(delta)
    print(result.states[3])

Propagation backends
--------------------

The shared delta-accumulative loop has two interchangeable backends: the
reference pure-Python loop (``"python"``, the default) and a vectorized CSR
engine (``"numpy"``) that runs every superstep with numpy array operations
while producing identical converged states, round counts and edge-activation
counts.  Select a backend:

* per call — ``run_batch(spec, graph, backend="numpy")`` or
  ``propagate(..., backend="numpy")``;
* per engine — every engine constructor takes ``backend=``, e.g.
  ``IngressEngine(spec, backend="numpy")`` or
  ``LayphEngine(spec, backend="numpy")``;
* via configuration — ``LayphConfig(backend="numpy")`` also covers Layph's
  shortcut computation and upper-layer iteration;
* globally — the ``REPRO_BACKEND`` environment variable (explicit arguments
  win over it).

Only specs that declare their operator algebra
(:attr:`repro.engine.AlgorithmSpec.dense_algebra` — set on all four built-in
algorithms) run vectorized; undeclared or nonstandard specs fall back to the
Python loop transparently.  See :mod:`repro.engine.backends`.
"""

from repro.engine.algorithms import BFS, PHP, PageRank, SSSP, make_algorithm
from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental import (
    DZiGEngine,
    GraphBoltEngine,
    IngressEngine,
    KickStarterEngine,
    RestartEngine,
    RisGraphEngine,
)
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig, build_layered_graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphDelta",
    "SSSP",
    "BFS",
    "PageRank",
    "PHP",
    "make_algorithm",
    "run_batch",
    "RestartEngine",
    "KickStarterEngine",
    "RisGraphEngine",
    "GraphBoltEngine",
    "DZiGEngine",
    "IngressEngine",
    "LayphEngine",
    "LayeredGraph",
    "LayphConfig",
    "build_layered_graph",
    "__version__",
]
