"""Workloads: dataset substitutes and batch-update (ΔG) generators."""

from repro.workloads.datasets import DATASETS, DatasetSpec, load_dataset
from repro.workloads.updates import random_edge_delta, random_vertex_delta

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "random_edge_delta",
    "random_vertex_delta",
]
