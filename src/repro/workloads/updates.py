"""Batch update (ΔG) generators.

The paper constructs ΔG by randomly adding new edges and removing existing
edges (5,000 of each by default), and separately evaluates vertex updates
(500 added and 500 deleted vertices).  These helpers reproduce both, scaled to
whatever batch size the caller asks for, and always take an explicit seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.delta import EdgeUpdate, GraphDelta, UpdateKind
from repro.graph.graph import Graph


def random_edge_delta(
    graph: Graph,
    num_additions: int,
    num_deletions: int,
    weighted: bool = True,
    seed: int = 0,
    max_weight: float = 10.0,
    protect: Optional[int] = None,
) -> GraphDelta:
    """Random edge insertions and deletions against ``graph``.

    Args:
        graph: the current graph (not modified).
        num_additions: number of new edges to insert (endpoints drawn from the
            existing vertices, avoiding duplicates of existing edges).
        num_deletions: number of existing edges to delete.
        weighted: whether new edges carry random weights.
        seed: RNG seed.
        max_weight: largest weight for new edges.
        protect: optional vertex whose removal/complete isolation should be
            avoided (commonly the algorithm's source vertex).
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        return GraphDelta()
    delta = GraphDelta()

    existing = list(graph.edges())
    rng.shuffle(existing)
    deletions = 0
    for source, target, _weight in existing:
        if deletions >= num_deletions:
            break
        if protect is not None and source == protect and graph.out_degree(protect) <= 1:
            continue
        delta.delete_edge(source, target)
        deletions += 1

    additions = 0
    attempts = 0
    while additions < num_additions and attempts < num_additions * 50:
        attempts += 1
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        if source == target or graph.has_edge(source, target):
            continue
        weight = round(rng.uniform(1.0, max_weight), 3) if weighted else 1.0
        delta.add_edge(source, target, weight)
        additions += 1
    assert not delta.validate(graph), (
        "random_edge_delta produced an invalid delta: " f"{delta.validate(graph)}"
    )
    return delta


def random_vertex_delta(
    graph: Graph,
    num_additions: int,
    num_deletions: int,
    edges_per_new_vertex: int = 3,
    weighted: bool = True,
    seed: int = 0,
    max_weight: float = 10.0,
    protect: Optional[int] = None,
) -> GraphDelta:
    """Random vertex insertions (with attaching edges) and deletions."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        return GraphDelta()
    delta = GraphDelta()

    candidates = [v for v in vertices if v != protect]
    rng.shuffle(candidates)
    for vertex in candidates[:num_deletions]:
        delta.delete_vertex(vertex)

    next_id = (graph.max_vertex_id() or 0) + 1
    for _ in range(num_additions):
        new_vertex = next_id
        next_id += 1
        edges = []
        for _ in range(edges_per_new_vertex):
            other = rng.choice(vertices)
            weight = round(rng.uniform(1.0, max_weight), 3) if weighted else 1.0
            if rng.random() < 0.5:
                edges.append((new_vertex, other, weight))
            else:
                edges.append((other, new_vertex, weight))
        delta.add_vertex(new_vertex, edges)
    assert not delta.validate(graph), (
        "random_vertex_delta produced an invalid delta: " f"{delta.validate(graph)}"
    )
    return delta


def poisoned_event_stream(
    graph: Graph,
    num_events: int = 200,
    seed: int = 0,
    poison_rate: float = 0.05,
    hub_bursts: int = 2,
    max_weight: float = 10.0,
    protect: Optional[int] = None,
) -> List[object]:
    """Adversarial unit-update stream for the chaos harness and stress runs.

    Returns ``num_events`` :class:`EdgeUpdate`/:class:`VertexUpdate` objects:
    mostly valid edge insertions/deletions tracked against an evolving view
    of ``graph``, salted with

    * *poison* events (NaN or inf weights, ``poison_rate`` of the stream) —
      intrinsically invalid, so ``GraphDelta.validate`` flags them on any
      graph and a streaming service must quarantine rather than apply them;
    * *duplicate* insertions of the edge just added (coalescer dedupe
      fodder) and add→delete flip-flops of the same edge (cancellation
      fodder);
    * *hub churn bursts*: short runs that repeatedly rewire the
      highest-out-degree vertex, the access pattern that stresses
      Layph-style layer maintenance far more than uniform churn.

    The valid portion keeps the evolving edge set consistent (deletes name
    edges that exist at their stream position), so any prefix of the stream
    coalesces into deltas that pass ``validate``.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        return []
    edges = {(s, t): w for s, t, w in graph.edges()}
    degree = {v: len(graph.out_neighbors(v)) for v in vertices}
    hub = max(vertices, key=lambda v: (degree[v], -v))

    def random_weight() -> float:
        return round(rng.uniform(1.0, max_weight), 3)

    def pick_new_edge() -> Optional[tuple]:
        for _ in range(50):
            source = rng.choice(vertices)
            target = rng.choice(vertices)
            if source != target and (source, target) not in edges:
                return source, target
        return None

    events: List[object] = []
    burst_left = 0
    burst_at = (
        sorted(rng.sample(range(num_events), min(hub_bursts, num_events)))
        if hub_bursts
        else []
    )
    while len(events) < num_events:
        position = len(events)
        if burst_at and position >= burst_at[0]:
            burst_at.pop(0)
            burst_left = min(8, num_events - position)
        roll = rng.random()
        if roll < poison_rate:
            pair = pick_new_edge()
            if pair is None:
                continue
            bad = rng.choice((float("nan"), float("inf"), float("-inf")))
            events.append(EdgeUpdate(UpdateKind.ADD_EDGE, pair[0], pair[1], bad))
            continue
        if burst_left > 0:
            # hub churn: rewire the hub's adjacency in place
            burst_left -= 1
            hub_out = [t for (s, t) in edges if s == hub]
            if hub_out and rng.random() < 0.5 and (protect != hub or len(hub_out) > 1):
                target = rng.choice(hub_out)
                events.append(EdgeUpdate(UpdateKind.DELETE_EDGE, hub, target))
                del edges[(hub, target)]
            else:
                target = rng.choice([v for v in vertices if v != hub])
                events.append(
                    EdgeUpdate(UpdateKind.ADD_EDGE, hub, target, random_weight())
                )
                edges[(hub, target)] = 0.0
            continue
        if roll < poison_rate + 0.15 and events:
            # duplicate / flip-flop of the most recent insertion
            last = events[-1]
            if (
                isinstance(last, EdgeUpdate)
                and last.kind is UpdateKind.ADD_EDGE
                and (last.source, last.target) in edges
            ):
                if rng.random() < 0.5:
                    events.append(
                        EdgeUpdate(
                            UpdateKind.ADD_EDGE,
                            last.source,
                            last.target,
                            random_weight(),
                        )
                    )
                else:
                    events.append(
                        EdgeUpdate(UpdateKind.DELETE_EDGE, last.source, last.target)
                    )
                    del edges[(last.source, last.target)]
                continue
        if roll < poison_rate + 0.45 and edges:
            deletable = [
                (s, t)
                for (s, t) in edges
                if not (
                    protect is not None
                    and s == protect
                    and sum(1 for (a, _b) in edges if a == protect) <= 1
                )
            ]
            if deletable:
                source, target = deletable[rng.randrange(len(deletable))]
                events.append(EdgeUpdate(UpdateKind.DELETE_EDGE, source, target))
                del edges[(source, target)]
                continue
        pair = pick_new_edge()
        if pair is None:
            continue
        events.append(
            EdgeUpdate(UpdateKind.ADD_EDGE, pair[0], pair[1], random_weight())
        )
        edges[pair] = 0.0
    return events
