"""Batch update (ΔG) generators.

The paper constructs ΔG by randomly adding new edges and removing existing
edges (5,000 of each by default), and separately evaluates vertex updates
(500 added and 500 deleted vertices).  These helpers reproduce both, scaled to
whatever batch size the caller asks for, and always take an explicit seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph


def random_edge_delta(
    graph: Graph,
    num_additions: int,
    num_deletions: int,
    weighted: bool = True,
    seed: int = 0,
    max_weight: float = 10.0,
    protect: Optional[int] = None,
) -> GraphDelta:
    """Random edge insertions and deletions against ``graph``.

    Args:
        graph: the current graph (not modified).
        num_additions: number of new edges to insert (endpoints drawn from the
            existing vertices, avoiding duplicates of existing edges).
        num_deletions: number of existing edges to delete.
        weighted: whether new edges carry random weights.
        seed: RNG seed.
        max_weight: largest weight for new edges.
        protect: optional vertex whose removal/complete isolation should be
            avoided (commonly the algorithm's source vertex).
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        return GraphDelta()
    delta = GraphDelta()

    existing = list(graph.edges())
    rng.shuffle(existing)
    deletions = 0
    for source, target, _weight in existing:
        if deletions >= num_deletions:
            break
        if protect is not None and source == protect and graph.out_degree(protect) <= 1:
            continue
        delta.delete_edge(source, target)
        deletions += 1

    additions = 0
    attempts = 0
    while additions < num_additions and attempts < num_additions * 50:
        attempts += 1
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        if source == target or graph.has_edge(source, target):
            continue
        weight = round(rng.uniform(1.0, max_weight), 3) if weighted else 1.0
        delta.add_edge(source, target, weight)
        additions += 1
    return delta


def random_vertex_delta(
    graph: Graph,
    num_additions: int,
    num_deletions: int,
    edges_per_new_vertex: int = 3,
    weighted: bool = True,
    seed: int = 0,
    max_weight: float = 10.0,
    protect: Optional[int] = None,
) -> GraphDelta:
    """Random vertex insertions (with attaching edges) and deletions."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        return GraphDelta()
    delta = GraphDelta()

    candidates = [v for v in vertices if v != protect]
    rng.shuffle(candidates)
    for vertex in candidates[:num_deletions]:
        delta.delete_vertex(vertex)

    next_id = (graph.max_vertex_id() or 0) + 1
    for _ in range(num_additions):
        new_vertex = next_id
        next_id += 1
        edges = []
        for _ in range(edges_per_new_vertex):
            other = rng.choice(vertices)
            weight = round(rng.uniform(1.0, max_weight), 3) if weighted else 1.0
            if rng.random() < 0.5:
                edges.append((new_vertex, other, weight))
            else:
                edges.append((other, new_vertex, weight))
        delta.add_vertex(new_vertex, edges)
    return delta
