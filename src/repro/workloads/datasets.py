"""Dataset substitutes for Table I.

The paper evaluates on three web graphs (UK-2005, IT-2004, SK-2005) and one
social network (Sinaweibo).  None of them is available offline and all are far
too large for a pure-Python engine, so the harness substitutes synthetic
graphs that preserve the structural contrast the paper relies on:

* the *web-like* datasets (``uk``, ``it``, ``sk``) are community graphs with
  many small dense communities and few bridges — the regime where Layph's
  skeleton is much smaller than the graph;
* the *social-like* dataset (``wb``) has a few large, loosely separated
  communities plus high-degree hubs — the regime where the paper reports the
  smallest gains (Section VI-F).

The sizes are scaled down by roughly four orders of magnitude so that every
figure regenerates in seconds; shapes, not absolute numbers, are the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.generators import community_graph
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset."""

    name: str
    paper_name: str
    kind: str
    num_communities: int
    community_size_range: tuple
    intra_edge_probability: float
    inter_edges_per_community: int
    hub_fraction: float
    weighted: bool
    seed: int

    def build(self) -> Graph:
        """Materialise the dataset."""
        return community_graph(
            num_communities=self.num_communities,
            community_size_range=self.community_size_range,
            intra_edge_probability=self.intra_edge_probability,
            inter_edges_per_community=self.inter_edges_per_community,
            weighted=self.weighted,
            seed=self.seed,
            hub_fraction=self.hub_fraction,
        )


#: the four datasets of Table I, in paper order
DATASETS: Dict[str, DatasetSpec] = {
    "uk": DatasetSpec(
        name="uk",
        paper_name="UK-2005",
        kind="web-like",
        num_communities=28,
        community_size_range=(15, 30),
        intra_edge_probability=0.18,
        inter_edges_per_community=4,
        hub_fraction=0.0,
        weighted=True,
        seed=11,
    ),
    "it": DatasetSpec(
        name="it",
        paper_name="IT-2004",
        kind="web-like",
        num_communities=32,
        community_size_range=(14, 28),
        intra_edge_probability=0.20,
        inter_edges_per_community=5,
        hub_fraction=0.0,
        weighted=True,
        seed=23,
    ),
    "sk": DatasetSpec(
        name="sk",
        paper_name="SK-2005",
        kind="web-like",
        num_communities=36,
        community_size_range=(16, 32),
        intra_edge_probability=0.16,
        inter_edges_per_community=4,
        hub_fraction=0.005,
        weighted=True,
        seed=37,
    ),
    "wb": DatasetSpec(
        name="wb",
        paper_name="Sinaweibo",
        kind="social-like",
        num_communities=7,
        community_size_range=(60, 110),
        intra_edge_probability=0.05,
        inter_edges_per_community=30,
        hub_fraction=0.02,
        weighted=True,
        seed=53,
    ),
}


def load_dataset(name: str) -> Graph:
    """Build one of the Table I substitutes by short name (uk/it/sk/wb)."""
    try:
        spec = DATASETS[name.lower()]
    except KeyError as error:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from error
    return spec.build()
