"""Experiment harness and plain-text reporting for the paper's figures."""

from repro.bench.harness import EngineRun, ExperimentResult, compare_engines, run_engine
from repro.bench.reporting import format_table, normalize

__all__ = [
    "EngineRun",
    "ExperimentResult",
    "run_engine",
    "compare_engines",
    "format_table",
    "normalize",
]
