"""Plain-text reporting helpers for benchmark output.

The original figures are bar charts; the harness prints the same series as
aligned text tables so they can be compared against the paper's shapes and
captured into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalize(values: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Divide every value by the baseline entry (baseline becomes 1.0)."""
    base = values.get(baseline, 0.0)
    if base == 0.0:
        base = 1.0
    return {key: value / base for key, value in values.items()}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Format a normalized ratio the way the paper reports speedups."""
    return f"{value:.2f}x"
