"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(e.g. ``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
