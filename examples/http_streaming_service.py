#!/usr/bin/env python
"""The streaming service over HTTP: durable submits and push subscriptions.

Scenario: the fault-tolerant update service from
``examples/streaming_update_service.py`` goes on the network.  A producer
submits edge events over loopback HTTP (every 200 response means the event
is WAL'd + fsync'd — a durable ack), dashboards watch the five nearest
vertices through a push subscription, and a poison event shows up in the
structured 200 payload as a quarantine diagnosis instead of failing the
request.  The example drives :func:`repro.service.serve` end to end:

1. boot an asyncio HTTP front end on an ephemeral loopback port;
2. subscribe to the smallest-distance top-5 and collect pushed deltas
   (long-poll) while batched submits stream in;
3. submit a NaN-weight poison event and read its dead-letter diagnosis
   from the submit response and ``GET /dlq``;
4. resubmit an already-acked seq and show the idempotent dup-ack;
5. drain over the wire and verify the subscriber's last pushed ranking
   equals the final snapshot's own ``/topk``.

Run with::

    python examples/http_streaming_service.py
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind
from repro.graph.generators import community_graph
from repro.service import AsyncServiceClient, UpdateService, serve
from repro.workloads.updates import poisoned_event_stream

NUM_EVENTS = 64
BATCH = 8


def build_service(directory):
    graph = community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=5,
    )
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    engine.initialize(graph)
    events = list(
        poisoned_event_stream(
            graph, num_events=NUM_EVENTS, seed=9, poison_rate=0.0, protect=0
        )
    )
    return UpdateService(engine, directory, batch_size=BATCH), events, graph


async def demo(service, events) -> None:
    server = await serve(service, "127.0.0.1", 0)
    client = AsyncServiceClient("127.0.0.1", server.port)
    try:
        status, health = await client.health()
        print(f"serving on 127.0.0.1:{server.port} (health {status}: "
              f"ready={health['ready']}, published_seq={health['published_seq']})")

        # --------------------------------------------------------------
        # watch the five nearest vertices before any traffic arrives
        # --------------------------------------------------------------
        status, sub = await client.subscribe_topk(5, largest=False)
        assert status == 200
        print(f"subscribed {sub['id']}: baseline top-5 at seq {sub['seq']} = "
              f"{[v for v, _ in sub['baseline']]}")

        # --------------------------------------------------------------
        # durable batched ingest: each 200 means every event in the batch
        # is on disk; the acks echo our client-side seqs
        # --------------------------------------------------------------
        acked = 0
        for base in range(0, NUM_EVENTS, BATCH):
            chunk = events[base : base + BATCH]
            status, doc = await client.submit_batch(
                [(base + i + 1, update) for i, update in enumerate(chunk)]
            )
            assert status == 200
            acked += len(doc["acks"])
        print(f"submitted {acked} events over the wire, all durably acked")

        # resubmitting an acked seq is a dup-ack, not a double apply
        status, doc = await client.submit(events[0], seq=1)
        assert status == 200 and doc["duplicates"] == [1]
        print("resubmit of seq 1 dup-acked (idempotent ingest)")

        # --------------------------------------------------------------
        # a poison event: HTTP 200 (it is durably WAL'd) with a
        # quarantine diagnosis once the writer dead-letters it
        # --------------------------------------------------------------
        poison = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, weight=float("nan"))
        status, doc = await client.submit(poison, seq=NUM_EVENTS + 1, timeout=30.0)
        assert status == 200
        diagnosis = doc.get("quarantine", {}).get(str(NUM_EVENTS + 1))
        print(f"poison event diagnosed in the 200 payload: {diagnosis['problems']}")

        # --------------------------------------------------------------
        # drain, confirm the dead-letter verdict, then fold the pushed
        # deltas into the final ranking
        # --------------------------------------------------------------
        status, _doc = await client.drain(timeout=60.0)
        assert status == 200
        status, dlq = await client.dlq()
        seqs = [entry["seq"] for entry in dlq["entries"]]
        print(f"dead-letter queue over the wire: seqs {seqs}")
        assert seqs == [NUM_EVENTS + 1]
        last = [tuple(pair) for pair in sub["baseline"]]
        deltas = 0
        while True:
            status, doc = await client.poll(sub["id"], wait=0.2)
            if status != 200 or not doc["deltas"]:
                break
            for delta in doc["deltas"]:
                last = [tuple(pair) for pair in delta["topk"]]
                deltas += 1
        status, top = await client.topk(5, largest=False)
        final = [tuple(pair) for pair in top["entries"]]
        rows = [
            ["pushed deltas", deltas],
            ["last pushed top-5", [v for v, _ in last]],
            ["final /topk", [v for v, _ in final]],
            ["rankings agree", last == final],
        ]
        print("\n" + format_table(["", "value"], rows, title="Subscription push"))
        assert last == final
        await client.unsubscribe(sub["id"])
    finally:
        await client.close()
        await server.aclose()


def main() -> None:
    directory = tempfile.mkdtemp(prefix="svc-http-demo-")
    service, events, graph = build_service(directory)
    print(f"graph: {graph.num_vertices()} vertices, {graph.num_edges()} edges")
    try:
        asyncio.run(demo(service, events))
    finally:
        service.close()
        shutil.rmtree(directory)
    print("\nevery 200 was a WAL'd ack; the watcher saw the same ranking the "
          "snapshot serves.")


if __name__ == "__main__":
    main()
