#!/usr/bin/env python
"""Live route distances on a road network with rolling closures.

Scenario: a navigation service maintains shortest travel times from a depot
(SSSP) over a road network.  Roads close and reopen continuously (accidents,
construction), each event changing a handful of edge weights.  The example
compares the dependency-tracking engines (KickStarter, RisGraph, Ingress) and
Layph on a grid-plus-neighbourhood road topology, then drills into Layph's
runtime breakdown across its four phases (the paper's Figure 7).

Run with::

    python examples/road_network_sssp.py
"""

from __future__ import annotations

import random

from repro.bench.harness import compare_engines
from repro.bench.reporting import format_table
from repro.graph.delta import GraphDelta
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph


def build_road_network(seed: int = 3) -> Graph:
    """A 2D arterial grid with dense residential neighbourhoods hanging off it."""
    rng = random.Random(seed)
    roads = grid_graph(12, 12, weighted=True, seed=seed)
    # make the grid bidirectional, as real roads mostly are
    for source, target, weight in list(roads.edges()):
        roads.add_edge(target, source, weight)
    next_vertex = 12 * 12
    for corner in range(0, 12 * 12, 9):
        # a small dense neighbourhood attached to every ninth junction
        block = list(range(next_vertex, next_vertex + 12))
        next_vertex += 12
        for i in block:
            for j in block:
                if i != j and rng.random() < 0.4:
                    roads.add_edge(i, j, round(rng.uniform(0.2, 2.0), 3))
        roads.add_edge(corner, block[0], round(rng.uniform(0.5, 3.0), 3))
        roads.add_edge(block[-1], corner, round(rng.uniform(0.5, 3.0), 3))
    return roads


def closure_events(graph: Graph, seed: int) -> GraphDelta:
    """A batch of road closures (weight spikes) and re-openings."""
    rng = random.Random(seed)
    delta = GraphDelta()
    edges = list(graph.edges())
    rng.shuffle(edges)
    for source, target, weight in edges[:8]:
        # closure: model as delete + re-add with a ten-fold travel time
        delta.delete_edge(source, target)
        delta.add_edge(source, target, weight * 10.0)
    for source, target, weight in edges[8:12]:
        # re-opening: travel time halves
        delta.delete_edge(source, target)
        delta.add_edge(source, target, weight * 0.5)
    return delta


def main() -> None:
    roads = build_road_network()
    print(f"road network: {roads.num_vertices()} junctions, {roads.num_edges()} road segments")

    deltas = []
    current = roads
    for batch in range(4):
        delta = closure_events(current, seed=900 + batch)
        deltas.append(delta)
        current = delta.apply(current)

    result = compare_engines(
        "sssp",
        roads,
        deltas,
        dataset="roads",
        engines=["restart", "kickstarter", "risgraph", "ingress", "layph"],
        source=0,
        check_correctness=True,
    )

    layph_run = result.by_engine()["layph"]
    rows = [
        [
            run.engine,
            run.edge_activations,
            f"{run.edge_activations / max(layph_run.edge_activations, 1):.2f}x",
            f"{run.wall_seconds * 1000:.1f} ms",
            "yes" if run.correct else "NO",
        ]
        for run in result.runs
    ]
    print()
    print(
        format_table(
            ["engine", "edge activations", "vs Layph", "response time", "matches batch"],
            rows,
            title="Depot shortest paths under 4 batches of closures/re-openings",
        )
    )

    print()
    total = sum(layph_run.phase_seconds.values()) or 1.0
    breakdown_rows = [
        [phase, f"{seconds * 1000:.2f} ms", f"{100.0 * seconds / total:.1f}%"]
        for phase, seconds in layph_run.phase_seconds.items()
    ]
    print(
        format_table(
            ["Layph phase", "time", "share"],
            breakdown_rows,
            title="Layph runtime breakdown (paper Figure 7)",
        )
    )


if __name__ == "__main__":
    main()
