#!/usr/bin/env python
"""Streaming PageRank over an evolving social network.

Scenario: a social platform maintains influence scores (PageRank) for its
follow graph.  New follows and unfollows arrive continuously in small
batches; recomputing from scratch for every batch is wasteful, and classic
incremental engines still flood most of the graph with change messages.  This
example streams follow/unfollow batches through four engines — Restart,
GraphBolt, Ingress and Layph — and reports the edge activations and response
time of each, mirroring the paper's PageRank experiments (Figures 1 and 5).

Run with::

    python examples/streaming_pagerank_social.py
"""

from __future__ import annotations

from repro.bench.harness import compare_engines
from repro.bench.reporting import format_table
from repro.graph.generators import community_graph
from repro.workloads.updates import random_edge_delta


def main() -> None:
    # Social-network substitute: many tight friend circles bridged by a few
    # cross-circle follows (the community structure Layph exploits).
    graph = community_graph(
        num_communities=30,
        community_size_range=(15, 30),
        intra_edge_probability=0.2,
        inter_edges_per_community=4,
        hub_fraction=0.005,
        weighted=False,
        seed=8,
    )
    print(f"follow graph: {graph.num_vertices()} users, {graph.num_edges()} follows")

    # Three batches of follow/unfollow events.
    deltas = []
    current = graph
    for batch in range(3):
        delta = random_edge_delta(
            current, num_additions=4, num_deletions=4, weighted=False, seed=500 + batch
        )
        deltas.append(delta)
        current = delta.apply(current)

    result = compare_engines(
        "pagerank",
        graph,
        deltas,
        dataset="social",
        engines=["restart", "graphbolt", "dzig", "ingress", "layph"],
        check_correctness=True,
    )

    layph_activations = result.by_engine()["layph"].edge_activations
    rows = []
    for run in result.runs:
        rows.append(
            [
                run.engine,
                run.edge_activations,
                f"{run.edge_activations / max(layph_activations, 1):.2f}x",
                f"{run.wall_seconds * 1000:.1f} ms",
                "yes" if run.correct else "NO",
            ]
        )
    print()
    print(
        format_table(
            ["engine", "edge activations", "vs Layph", "response time", "matches batch"],
            rows,
            title="Streaming PageRank over 3 batches of 30 follow/unfollow events",
        )
    )
    print()
    ranked = sorted(result.runs, key=lambda run: run.edge_activations)
    print(
        "Engines ordered by edge activations (fewest first): "
        + " < ".join(run.engine for run in ranked)
    )
    print(
        "Layph constrains change propagation to the touched friend circles plus\n"
        "the upper-layer skeleton; the remaining circles are only refreshed\n"
        "through their entry shortcuts."
    )


if __name__ == "__main__":
    main()
