#!/usr/bin/env python
"""Quickstart: incremental shortest paths with Layph.

Builds a small weighted road-network-like graph, runs SSSP once, then streams
a few batches of edge changes through the Layph engine and shows that the
incrementally maintained distances match a from-scratch recomputation while
activating far fewer edges.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Graph, GraphDelta, LayphEngine, SSSP, run_batch
from repro.bench.reporting import format_table
from repro.graph.generators import community_graph
from repro.incremental import RestartEngine
from repro.workloads.updates import random_edge_delta


def main() -> None:
    # A mid-sized graph with pronounced community structure (the regime the
    # paper targets: dense neighbourhoods, few bridges).
    graph = community_graph(
        num_communities=12,
        community_size_range=(15, 30),
        intra_edge_probability=0.2,
        inter_edges_per_community=4,
        weighted=True,
        seed=42,
    )
    print(f"graph: {graph.num_vertices()} vertices, {graph.num_edges()} edges")

    spec = SSSP(source=0)
    layph = LayphEngine(spec)
    layph.initialize(graph)
    restart = RestartEngine(SSSP(source=0))
    restart.initialize(graph)

    layered = layph.layered
    upper_vertices, upper_links = layered.upper_size()
    print(
        f"layered graph: {len(layered.subgraphs)} dense subgraphs, "
        f"upper layer {upper_vertices} vertices / {upper_links} links, "
        f"{layered.shortcut_count()} shortcuts"
    )

    rows = []
    current = graph
    for round_index in range(3):
        delta = random_edge_delta(
            current, num_additions=10, num_deletions=10, seed=100 + round_index, protect=0
        )
        layph_result = layph.apply_delta(delta)
        restart_result = restart.apply_delta(delta)
        current = delta.apply(current)

        reference = run_batch(SSSP(source=0), current).states
        correct = SSSP(source=0).states_match(layph_result.states, reference)
        rows.append(
            [
                round_index + 1,
                len(delta),
                layph_result.metrics.edge_activations,
                restart_result.metrics.edge_activations,
                f"{restart_result.metrics.edge_activations / max(layph_result.metrics.edge_activations, 1):.1f}x",
                "yes" if correct else "NO",
            ]
        )

    print()
    print(
        format_table(
            ["batch", "|ΔG|", "Layph activations", "Restart activations", "saving", "matches batch"],
            rows,
            title="Incremental SSSP: Layph vs Restart",
        )
    )


if __name__ == "__main__":
    main()
