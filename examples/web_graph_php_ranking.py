#!/usr/bin/env python
"""Seed-relative relevance (PHP) on an evolving web-like graph.

Scenario: a crawler maintains penalized-hitting-probability relevance scores
relative to a trusted seed page over a web graph that keeps gaining and
losing hyperlinks.  The example demonstrates the fourth workload of the paper
(PHP) end to end, including the layered-graph view Layph builds for it, and
verifies the incremental scores against a full recomputation.

Run with::

    python examples/web_graph_php_ranking.py
"""

from __future__ import annotations

from repro import LayphEngine, PHP, run_batch
from repro.bench.reporting import format_table
from repro.graph.generators import community_graph
from repro.workloads.updates import random_edge_delta


def main() -> None:
    web = community_graph(
        num_communities=20,
        community_size_range=(15, 30),
        intra_edge_probability=0.18,
        inter_edges_per_community=5,
        weighted=True,
        seed=77,
    )
    seed_page = 0
    print(f"web graph: {web.num_vertices()} pages, {web.num_edges()} links")

    spec = PHP(source=seed_page, damping=0.85)
    engine = LayphEngine(spec)
    engine.initialize(web)
    layered = engine.layered
    print(
        f"layered view: {len(layered.subgraphs)} dense subgraphs, "
        f"upper layer {layered.upper_size()[0]} vertices, "
        f"{layered.shortcut_count()} shortcuts "
        f"(offline build {engine.offline_seconds * 1000:.0f} ms)"
    )

    current = web
    result = None
    for crawl_round in range(3):
        delta = random_edge_delta(
            current, num_additions=20, num_deletions=20, seed=300 + crawl_round, protect=seed_page
        )
        result = engine.apply_delta(delta)
        current = delta.apply(current)
        print(
            f"crawl round {crawl_round + 1}: |ΔG|={len(delta)}, "
            f"edge activations={result.metrics.edge_activations}"
        )

    reference = run_batch(PHP(source=seed_page, damping=0.85), current).states
    worst = max(abs(result.states[v] - reference[v]) for v in reference)
    print(f"max divergence from a from-scratch PHP run: {worst:.2e}")

    top = sorted(result.states.items(), key=lambda item: -item[1])[:10]
    rows = [[rank + 1, page, f"{score:.5f}"] for rank, (page, score) in enumerate(top)]
    print()
    print(
        format_table(
            ["rank", "page", "PHP score"],
            rows,
            title=f"Pages most relevant to seed page {seed_page} after 3 crawl rounds",
        )
    )


if __name__ == "__main__":
    main()
