#!/usr/bin/env python
"""A fault-tolerant streaming update service, end to end.

Scenario: a ranking service keeps shortest-path distances fresh while edge
events stream in from unreliable producers — some events are malformed
(NaN weights), the apply path occasionally hiccups, and the process can be
killed at any moment.  The example drives :class:`repro.service.UpdateService`
through the full lifecycle:

1. ingest a seeded event stream (each submit is WAL'd + fsync'd before the
   acknowledgement comes back);
2. serve point/top-k queries from immutable published snapshots while the
   writer coalesces and applies batches;
3. quarantine the poison events to the dead-letter queue without stalling
   the stream;
4. kill the service mid-stream (simulated with the chaos injector), then
   ``UpdateService.recover`` the directory and show the replayed run lands
   on states bitwise-identical to an uninterrupted reference run.

Run with::

    python examples/streaming_update_service.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import community_graph
from repro.service import FaultInjector, ServiceKilled, ServiceDead, UpdateService
from repro.workloads.updates import poisoned_event_stream

NUM_EVENTS = 120
KILL_SEQ = 60


def build_service(graph, directory, faults=None):
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    engine.initialize(graph)
    return UpdateService(engine, directory, batch_size=8, faults=faults)


def submit_all(service, stream):
    """Submit with explicit seqs so resubmits after a crash dup-ack."""
    for index, update in enumerate(stream):
        try:
            service.submit(update, seq=index + 1)
        except (ServiceKilled, ServiceDead):
            return index + 1
    service.drain()
    return None


def main() -> None:
    graph = community_graph(
        num_communities=6,
        community_size_range=(15, 25),
        intra_edge_probability=0.2,
        inter_edges_per_community=4,
        weighted=True,
        seed=42,
    )
    print(f"graph: {graph.num_vertices()} vertices, {graph.num_edges()} edges")
    stream = poisoned_event_stream(
        graph, num_events=NUM_EVENTS, seed=9, poison_rate=0.04, protect=0
    )

    # ------------------------------------------------------------------
    # reference: the same stream with no faults
    # ------------------------------------------------------------------
    ref_dir = tempfile.mkdtemp(prefix="svc-ref-")
    reference = build_service(graph, ref_dir)
    assert submit_all(reference, stream) is None
    ref_snapshot = reference.snapshot()
    ref_dlq = reference.dlq.seqs()
    print(
        f"\nreference run: applied through seq {ref_snapshot.seq}, "
        f"{len(ref_dlq)} poison events quarantined at {ref_dlq}"
    )
    print("nearest vertices:", ref_snapshot.top_k(5, largest=False))
    reference.close()
    shutil.rmtree(ref_dir)

    # ------------------------------------------------------------------
    # chaos run: kill the process right after event 60 hits the WAL
    # ------------------------------------------------------------------
    directory = tempfile.mkdtemp(prefix="svc-demo-")
    faults = FaultInjector()
    faults.arm("post_wal_append", ServiceKilled, when=lambda c: c["seq"] == KILL_SEQ)
    service = build_service(graph, directory, faults=faults)
    stopped_at = submit_all(service, stream)
    print(
        f"\nservice killed at event {stopped_at} "
        f"(event {KILL_SEQ} was WAL'd but never acknowledged)"
    )

    # recover from the directory: WAL replay + durable-store warm restore
    recovered = UpdateService.recover(directory, batch_size=8)
    health = recovered.health()
    print(
        f"recovered: durable floor seq {health['last_applied_seq']}, "
        f"replaying {health['last_walled_seq'] - health['last_applied_seq']} "
        "WAL'd events, then resubmitting the rest"
    )
    assert submit_all(recovered, stream) is None

    snapshot = recovered.snapshot()
    rows = [
        ["final seq", ref_snapshot.seq, snapshot.seq],
        ["states bitwise equal", "-", snapshot.states == ref_snapshot.states],
        ["checksum", ref_snapshot.checksum, snapshot.checksum],
        ["dead-letter queue", ref_dlq, recovered.dlq.seqs()],
    ]
    print(
        "\n"
        + format_table(
            ["", "fault-free reference", "killed + recovered"],
            rows,
            title="Exactly-once recovery",
        )
    )
    assert snapshot.states == ref_snapshot.states
    assert recovered.dlq.seqs() == ref_dlq
    recovered.close()
    shutil.rmtree(directory)
    print("\nkilled, recovered, and bitwise-identical to the reference run.")


if __name__ == "__main__":
    main()
